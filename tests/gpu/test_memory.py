"""Unit tests for the memory-hierarchy model."""

import numpy as np
import pytest

from repro.gpu import GTX_980, TITAN_V, WorkloadProfile, derive_geometry
from repro.gpu.memory import coalescing_overfetch, memory_demand

STREAM = WorkloadProfile(
    name="stream", x_size=4096, y_size=4096,
    reads_per_element=2.0, writes_per_element=1.0,
)
STENCIL = WorkloadProfile(
    name="stencil", x_size=4096, y_size=4096, stencil_radius=2,
)


def make_geom(profile, tx=1, ty=1, tz=1, wx=8, wy=4, wz=1):
    return derive_geometry(
        profile,
        np.atleast_1d(tx), np.atleast_1d(ty), np.atleast_1d(tz),
        np.atleast_1d(wx), np.atleast_1d(wy), np.atleast_1d(wz),
    )


class TestCoalescingOverfetch:
    def test_unit_stride_wide_row_is_perfect(self):
        # 8 lanes x 4B = 32B = exactly one sector.
        of = coalescing_overfetch(
            np.array([8]), np.array([4]), np.array([1]), TITAN_V, 4
        )
        assert of[0] == pytest.approx(1.0)

    def test_large_stride_fetches_sector_per_lane(self):
        # Stride 16 elements: every lane in its own sector: 32B moved for
        # 4B used = 8x.
        of = coalescing_overfetch(
            np.array([8]), np.array([4]), np.array([16]), TITAN_V, 4
        )
        assert of[0] == pytest.approx(8.0)

    def test_narrow_row_wastes_sector(self):
        # 2 lanes x 4B = 8B used but a whole 32B sector moved = 4x.
        of = coalescing_overfetch(
            np.array([2]), np.array([16]), np.array([1]), TITAN_V, 4
        )
        assert of[0] == pytest.approx(4.0)

    def test_monotone_in_stride(self):
        strides = np.array([1, 2, 4, 8, 16])
        of = coalescing_overfetch(
            np.full(5, 8), np.full(5, 4), strides, TITAN_V, 4
        )
        assert np.all(np.diff(of) >= 0)


class TestMemoryDemand:
    def test_ideal_config_close_to_compulsory(self):
        geom = make_geom(STREAM, tx=1, wx=8, wy=4)
        demand = memory_demand(STREAM, geom, TITAN_V, np.array([1]))
        compulsory = STREAM.elements * 3 * 4  # 2 reads + 1 write, 4B each
        assert demand.total_bytes[0] >= compulsory
        assert demand.total_bytes[0] < 1.3 * compulsory

    def test_strided_config_moves_more(self):
        good = memory_demand(
            STREAM, make_geom(STREAM, tx=1), TITAN_V, np.array([1])
        )
        bad = memory_demand(
            STREAM, make_geom(STREAM, tx=16), TITAN_V, np.array([16])
        )
        assert bad.total_bytes[0] > good.total_bytes[0]

    def test_cache_forgiveness_differs_by_arch(self):
        """Maxwell punishes strided access harder than Volta."""
        geom = make_geom(STREAM, tx=8)
        tx = np.array([8])
        maxwell = memory_demand(STREAM, geom, GTX_980, tx)
        volta = memory_demand(STREAM, geom, TITAN_V, tx)
        assert maxwell.read_overfetch[0] > volta.read_overfetch[0]

    def test_write_overfetch_softer_than_read(self):
        geom = make_geom(STREAM, tx=16)
        d = memory_demand(STREAM, geom, TITAN_V, np.array([16]))
        assert d.write_overfetch[0] < d.read_overfetch[0]
        assert d.write_overfetch[0] >= 1.0

    def test_stencil_amplification_shrinks_with_tile(self):
        small = memory_demand(
            STENCIL, make_geom(STENCIL, wx=4, wy=2), TITAN_V, np.array([1])
        )
        large = memory_demand(
            STENCIL, make_geom(STENCIL, wx=8, wy=8, ty=4), TITAN_V,
            np.array([1]),
        )
        assert large.stencil_amplification[0] < small.stencil_amplification[0]
        assert small.stencil_amplification[0] > 1.0

    def test_non_stencil_amplification_is_one(self):
        d = memory_demand(
            STREAM, make_geom(STREAM), TITAN_V, np.array([1])
        )
        assert d.stencil_amplification[0] == pytest.approx(1.0)

    def test_vectorized_shapes(self):
        txs = np.array([1, 2, 4, 8])
        geom = make_geom(STREAM, tx=txs, wx=np.full(4, 8))
        d = memory_demand(STREAM, geom, TITAN_V, txs)
        assert d.total_bytes.shape == (4,)
        assert np.all(d.total_bytes > 0)
