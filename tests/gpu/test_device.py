"""Unit tests for the simulated measurement device."""

import numpy as np
import pytest

from repro.gpu import (
    DEFAULT_NOISE,
    NOISELESS,
    TITAN_V,
    SimulatedDevice,
    config_dict_to_row,
)
from repro.kernels import get_kernel

GOOD = {"thread_x": 1, "thread_y": 1, "thread_z": 1,
        "wg_x": 8, "wg_y": 4, "wg_z": 1}
BAD = {"thread_x": 1, "thread_y": 1, "thread_z": 1,
       "wg_x": 8, "wg_y": 8, "wg_z": 8}


@pytest.fixture
def device():
    return SimulatedDevice(
        TITAN_V, get_kernel("add", 2048, 2048).profile(),
        rng=np.random.default_rng(0),
    )


class TestMeasure:
    def test_valid_measurement(self, device):
        m = device.measure(GOOD)
        assert m.valid
        assert np.isfinite(m.runtime_ms) and m.runtime_ms > 0
        assert m.transfer_ms > 0

    def test_invalid_launch(self, device):
        m = device.measure(BAD)
        assert not m.valid
        assert np.isinf(m.runtime_ms)

    def test_missing_parameter_raises(self, device):
        with pytest.raises(KeyError, match="wg_z"):
            device.measure({k: v for k, v in GOOD.items() if k != "wg_z"})

    def test_repeated_measurements_vary(self, device):
        ms = device.measure_repeated(GOOD, 10)
        values = [m.runtime_ms for m in ms]
        assert len(set(values)) > 1  # noise

    def test_repeats_validation(self, device):
        with pytest.raises(ValueError):
            device.measure_repeated(GOOD, 0)

    def test_noiseless_device_deterministic(self):
        dev = SimulatedDevice(
            TITAN_V, get_kernel("add", 2048, 2048).profile(),
            noise=NOISELESS, rng=np.random.default_rng(0),
        )
        values = [m.runtime_ms for m in dev.measure_repeated(GOOD, 5)]
        assert len(set(values)) == 1

    def test_transfer_excluded_from_runtime(self, device):
        """Section VI-A: the timer excludes host<->device transfers."""
        m = device.measure(GOOD)
        assert m.total_ms == pytest.approx(m.runtime_ms + m.transfer_ms)
        assert m.transfer_ms > 0

    def test_transfer_scales_with_data(self):
        small = SimulatedDevice(
            TITAN_V, get_kernel("add", 1024, 1024).profile()
        )
        large = SimulatedDevice(
            TITAN_V, get_kernel("add", 4096, 4096).profile()
        )
        assert large.transfer_time_ms() == pytest.approx(
            16 * small.transfer_time_ms()
        )


class TestAccounting:
    def test_launch_counter(self, device):
        assert device.launches == 0
        device.measure(GOOD)
        assert device.launches == 1
        device.measure_repeated(GOOD, 10)
        assert device.launches == 11

    def test_batch_counts(self, device):
        device.measure_batch([GOOD, GOOD, BAD])
        assert device.launches == 3

    def test_reset(self, device):
        device.measure(GOOD)
        device.reset_counter()
        assert device.launches == 0

    def test_true_runtimes_not_counted(self, device):
        device.true_runtimes(config_dict_to_row(GOOD).reshape(1, -1))
        assert device.launches == 0


class TestBatch:
    def test_batch_matches_columns(self, device):
        row = config_dict_to_row(GOOD)
        np.testing.assert_array_equal(row, [1, 1, 1, 8, 4, 1])

    def test_empty_batch(self, device):
        out = device.measure_batch([])
        assert out.size == 0

    def test_batch_inf_for_invalid(self, device):
        out = device.measure_batch([GOOD, BAD])
        assert np.isfinite(out[0])
        assert np.isinf(out[1])

    def test_same_seed_same_measurements(self):
        prof = get_kernel("add", 2048, 2048).profile()
        a = SimulatedDevice(TITAN_V, prof, rng=np.random.default_rng(5))
        b = SimulatedDevice(TITAN_V, prof, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(
            a.measure_batch([GOOD] * 5), b.measure_batch([GOOD] * 5)
        )
