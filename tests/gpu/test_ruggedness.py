"""Unit tests for the deterministic ruggedness term."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.ruggedness import ruggedness_factor, standard_normal_hash


def random_configs(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.column_stack(
        [
            rng.integers(1, 17, n), rng.integers(1, 17, n),
            rng.integers(1, 17, n), rng.integers(1, 9, n),
            rng.integers(1, 9, n), rng.integers(1, 9, n),
        ]
    )


class TestStandardNormalHash:
    def test_deterministic(self):
        cfgs = random_configs(100)
        a = standard_normal_hash(cfgs, "k/arch")
        b = standard_normal_hash(cfgs, "k/arch")
        np.testing.assert_array_equal(a, b)

    def test_order_independent(self):
        """Counter-based: any subset in any order gives identical values."""
        cfgs = random_configs(100)
        full = standard_normal_hash(cfgs, "k")
        perm = np.random.default_rng(1).permutation(100)
        shuffled = standard_normal_hash(cfgs[perm], "k")
        np.testing.assert_array_equal(full[perm], shuffled)

    def test_key_changes_landscape(self):
        cfgs = random_configs(200)
        a = standard_normal_hash(cfgs, "harris/titan_v")
        b = standard_normal_hash(cfgs, "harris/gtx_980")
        assert not np.allclose(a, b)

    def test_approximately_standard_normal(self):
        cfgs = random_configs(20000)
        z = standard_normal_hash(cfgs, "k")
        assert abs(z.mean()) < 0.05
        assert abs(z.std() - 1.0) < 0.05
        # Roughly symmetric tails.
        assert 0.1 < (z > 1.0).mean() / 0.1587 < 1.9

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            standard_normal_hash(np.array([1, 2, 3]), "k")

    def test_single_column_change_decorrelates(self):
        cfgs = random_configs(5000)
        z0 = standard_normal_hash(cfgs, "k")
        bumped = cfgs.copy()
        bumped[:, 0] = (bumped[:, 0] % 16) + 1
        z1 = standard_normal_hash(bumped, "k")
        assert abs(np.corrcoef(z0, z1)[0, 1]) < 0.05


class TestRuggednessFactor:
    def test_zero_sigma_is_identity(self):
        cfgs = random_configs(50)
        np.testing.assert_array_equal(
            ruggedness_factor(cfgs, "k", 0.0, 0.0), np.ones(50)
        )

    def test_asymmetric_bounds(self):
        cfgs = random_configs(20000)
        f = ruggedness_factor(cfgs, "k", sigma_slow=0.3, sigma_fast=0.05)
        # Slowdowns can be large, speedups bounded by the small sigma.
        assert f.max() > 1.5
        assert f.min() > np.exp(-0.05 * 6)  # ~6 sigma floor
        assert f.min() < 1.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            ruggedness_factor(random_configs(5), "k", -0.1)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 0.2))
    @settings(max_examples=20)
    def test_always_positive(self, s_slow, s_fast):
        f = ruggedness_factor(random_configs(100), "k", s_slow, s_fast)
        assert np.all(f > 0)
