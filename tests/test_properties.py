"""Cross-cutting property-based tests of system-level invariants.

These complement the per-module suites with properties that span layers:
physical monotonicities of the performance model, conservation properties
of the experiment pipeline, and uniformity of the samplers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import GTX_980, TITAN_V, simulate_runtimes
from repro.gpu.workload import WorkloadProfile
from repro.kernels import get_kernel
from repro.searchspace import paper_search_space

SPACE = paper_search_space()

config_strategy = st.tuples(
    st.integers(1, 16), st.integers(1, 16), st.integers(1, 16),
    st.integers(1, 8), st.integers(1, 8), st.integers(1, 8),
)


class TestModelPhysics:
    @given(config_strategy)
    @settings(max_examples=40, deadline=None)
    def test_more_work_never_faster(self, cfg):
        """Doubling the image area can never reduce runtime."""
        small = get_kernel("harris", 2048, 2048).profile()
        large = get_kernel("harris", 4096, 4096).profile()
        row = np.array([cfg])
        t_small = simulate_runtimes(small, TITAN_V, row).runtime_ms[0]
        t_large = simulate_runtimes(large, TITAN_V, row).runtime_ms[0]
        if np.isfinite(t_small):
            assert t_large >= t_small

    @given(config_strategy)
    @settings(max_examples=40, deadline=None)
    def test_more_flops_never_faster(self, cfg):
        """Adding arithmetic to the same access pattern cannot speed a
        kernel up."""
        base = WorkloadProfile(name="t", x_size=2048, y_size=2048,
                               flops_per_element=10.0)
        heavy = WorkloadProfile(name="t", x_size=2048, y_size=2048,
                                flops_per_element=1000.0)
        row = np.array([cfg])
        t_base = simulate_runtimes(base, TITAN_V, row).runtime_ms[0]
        t_heavy = simulate_runtimes(heavy, TITAN_V, row).runtime_ms[0]
        if np.isfinite(t_base):
            assert t_heavy >= t_base * 0.999

    @given(config_strategy)
    @settings(max_examples=40, deadline=None)
    def test_failure_iff_workgroup_limit(self, cfg):
        """Launch failure happens exactly when wg product > device max."""
        prof = get_kernel("add", 1024, 1024).profile()
        row = np.array([cfg])
        result = simulate_runtimes(prof, GTX_980, row)
        expected = cfg[3] * cfg[4] * cfg[5] > GTX_980.max_threads_per_block
        assert bool(result.launch_failure[0]) == expected

    @given(config_strategy, config_strategy)
    @settings(max_examples=30, deadline=None)
    def test_batch_consistency(self, cfg_a, cfg_b):
        """Simulating configs together or separately is identical."""
        prof = get_kernel("mandelbrot", 1024, 1024).profile()
        batch = simulate_runtimes(
            prof, TITAN_V, np.array([cfg_a, cfg_b])
        ).runtime_ms
        solo_a = simulate_runtimes(
            prof, TITAN_V, np.array([cfg_a])
        ).runtime_ms[0]
        solo_b = simulate_runtimes(
            prof, TITAN_V, np.array([cfg_b])
        ).runtime_ms[0]
        np.testing.assert_array_equal(batch, [solo_a, solo_b])


class TestSamplerUniformity:
    def test_unconstrained_sampling_uniform_per_axis(self):
        rng = np.random.default_rng(0)
        flats = SPACE.sample_flat(rng, 60_000, feasible_only=False)
        idx = SPACE.flats_to_index_matrix(flats)
        for d, param in enumerate(SPACE.parameters):
            counts = np.bincount(idx[:, d], minlength=param.cardinality)
            expected = 60_000 / param.cardinality
            # chi-square-ish slack: every value within 15% of uniform.
            assert np.all(np.abs(counts - expected) < 0.15 * expected)

    def test_feasible_sampling_never_violates(self):
        rng = np.random.default_rng(1)
        flats = SPACE.sample_flat(rng, 5_000, feasible_only=True)
        idx = SPACE.flats_to_index_matrix(flats)
        values = SPACE.index_matrix_to_features(idx)
        wg_product = values[:, 3] * values[:, 4] * values[:, 5]
        assert np.all(wg_product <= 256)


class TestBudgetProperty:
    @given(st.sampled_from(["genetic_algorithm", "bo_tpe",
                            "simulated_annealing", "particle_swarm"]),
           st.integers(21, 60))
    @settings(max_examples=10, deadline=None)
    def test_any_budget_exactly_consumed(self, alg, budget):
        """Every live tuner consumes exactly its budget, for any budget."""
        from repro.gpu import SimulatedDevice
        from repro.search import Objective, make_tuner

        kernel = get_kernel("add", 1024, 1024)
        device = SimulatedDevice(
            TITAN_V, kernel.profile(), rng=np.random.default_rng(0)
        )
        objective = Objective(
            kernel.space(), lambda c: device.measure(c).runtime_ms, budget
        )
        result = make_tuner(alg).tune(objective, np.random.default_rng(1))
        assert result.samples_used == budget
        assert device.launches == budget
