"""Tests for the mini-ImageCL tokenizer and parser."""

import pytest

from repro.imagecl import ImageClSyntaxError, parse_kernel
from repro.imagecl.ast import (
    Binary,
    Call,
    Declare,
    ImageRead,
    ImageWrite,
    Number,
    Ternary,
)

COPY = """
kernel copy(image in float src, image out float dst) {
    dst[x, y] = src[x, y];
}
"""


class TestSignatures:
    def test_images_and_directions(self):
        k = parse_kernel(COPY)
        assert k.name == "copy"
        assert k.input_images() == ["src"]
        assert k.output_images() == ["dst"]

    def test_scalar_parameters(self):
        k = parse_kernel("""
            kernel scale(image in float a, image out float b, float f) {
                b[x, y] = a[x, y] * f;
            }
        """)
        assert [s.name for s in k.scalars] == ["f"]

    def test_multiple_inputs(self):
        k = parse_kernel("""
            kernel add(image in float a, image in float b,
                       image out float c) {
                c[x, y] = a[x, y] + b[x, y];
            }
        """)
        assert k.input_images() == ["a", "b"]

    def test_missing_output_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="no output"):
            parse_kernel("""
                kernel bad(image in float a) { float t = a[x, y]; }
            """)

    def test_reserved_names_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="shadows"):
            parse_kernel("""
                kernel bad(image in float x, image out float d) {
                    d[x, y] = x[x, y];
                }
            """)


class TestStatements:
    def test_declare_and_assign(self):
        k = parse_kernel("""
            kernel t(image in float a, image out float b) {
                float v = a[x, y];
                v = v * 2.0;
                b[x, y] = v;
            }
        """)
        assert isinstance(k.body[0], Declare)
        assert isinstance(k.body[2], ImageWrite)

    def test_redeclaration_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="redeclaration"):
            parse_kernel("""
                kernel t(image in float a, image out float b) {
                    float v = 1.0;
                    float v = 2.0;
                    b[x, y] = v;
                }
            """)

    def test_undeclared_assignment_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="undeclared"):
            parse_kernel("""
                kernel t(image in float a, image out float b) {
                    v = 1.0;
                    b[x, y] = v;
                }
            """)

    def test_offset_write_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="writes must target"):
            parse_kernel("""
                kernel t(image in float a, image out float b) {
                    b[x + 1, y] = a[x, y];
                }
            """)

    def test_never_writing_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="never writes"):
            parse_kernel("""
                kernel t(image in float a, image out float b) {
                    float v = a[x, y];
                }
            """)


class TestExpressions:
    def kernel_with(self, expr: str):
        return parse_kernel(f"""
            kernel t(image in float a, image out float b) {{
                b[x, y] = {expr};
            }}
        """)

    def test_precedence(self):
        k = self.kernel_with("1.0 + 2.0 * 3.0")
        root = k.body[0].value
        assert isinstance(root, Binary) and root.op == "+"
        assert isinstance(root.right, Binary) and root.right.op == "*"

    def test_parentheses(self):
        k = self.kernel_with("(1.0 + 2.0) * 3.0")
        root = k.body[0].value
        assert root.op == "*"
        assert isinstance(root.left, Binary) and root.left.op == "+"

    def test_image_offsets(self):
        k = self.kernel_with("a[x + 2, y - 1]")
        read = k.body[0].value
        assert isinstance(read, ImageRead)
        assert (read.dx, read.dy) == (2, -1)

    def test_builtin_calls(self):
        k = self.kernel_with("max(a[x, y], 0.0)")
        call = k.body[0].value
        assert isinstance(call, Call) and call.func == "max"

    def test_unknown_function_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="unknown function"):
            self.kernel_with("sin(a[x, y])")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="argument"):
            self.kernel_with("sqrt(a[x, y], 2.0)")

    def test_ternary(self):
        k = self.kernel_with("a[x, y] > 0.5 ? 1.0 : 0.0")
        assert isinstance(k.body[0].value, Ternary)

    def test_bare_image_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="without"):
            self.kernel_with("a")

    def test_unknown_identifier_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="unknown identifier"):
            self.kernel_with("q + 1.0")

    def test_swapped_axes_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="x"):
            self.kernel_with("a[y, x]")

    def test_fractional_offset_rejected(self):
        with pytest.raises(ImageClSyntaxError, match="integer"):
            self.kernel_with("a[x + 1.5, y]")

    def test_error_reports_position(self):
        with pytest.raises(ImageClSyntaxError, match=r"line \d+:\d+"):
            parse_kernel("kernel t( {")

    def test_comments_skipped(self):
        k = parse_kernel("""
            // a copy kernel
            kernel t(image in float a, image out float b) {
                b[x, y] = a[x, y];  // identity
            }
        """)
        assert k.name == "t"
