"""Tests for mini-ImageCL static analysis and execution."""

import numpy as np
import pytest

from repro.imagecl import analyze_kernel, compile_kernel, parse_kernel
from repro.imagecl.compile import execute_kernel

EDGE = """
kernel edge(image in float img, image out float dst) {
    float gx = img[x+1, y] - img[x-1, y];
    float gy = img[x, y+1] - img[x, y-1];
    dst[x, y] = sqrt(gx * gx + gy * gy);
}
"""


class TestAnalysis:
    def test_edge_kernel_counts(self):
        a = analyze_kernel(parse_kernel(EDGE))
        assert a.reads_per_pixel == 4
        assert a.stencil_radius == 1
        assert a.writes == 1
        # 2 subs + 2 muls + 1 add = 5 FLOPs; sqrt on the SFU pipe.
        assert a.flops == 5.0
        assert a.sfu_ops == 1.0

    def test_duplicate_reads_counted_once(self):
        a = analyze_kernel(parse_kernel("""
            kernel t(image in float a, image out float b) {
                b[x, y] = a[x, y] + a[x, y] + a[x, y];
            }
        """))
        assert a.reads_per_pixel == 1
        assert a.flops == 2.0

    def test_divide_on_sfu_pipe(self):
        a = analyze_kernel(parse_kernel("""
            kernel t(image in float a, image out float b) {
                b[x, y] = a[x, y] / 3.0;
            }
        """))
        assert a.sfu_ops == 1.0
        assert a.flops == 0.0

    def test_registers_grow_with_locals(self):
        small = analyze_kernel(parse_kernel("""
            kernel t(image in float a, image out float b) {
                b[x, y] = a[x, y];
            }
        """))
        big = analyze_kernel(parse_kernel("""
            kernel t(image in float a, image out float b) {
                float p = a[x-1, y];
                float q = a[x+1, y];
                float r = a[x, y-1];
                float s = a[x, y+1];
                b[x, y] = p + q + r + s;
            }
        """))
        assert big.registers > small.registers

    def test_profile_derivation(self):
        k = compile_kernel(EDGE, 256, 128)
        p = k.profile()
        assert p.name == "edge"
        assert (p.x_size, p.y_size) == (256, 128)
        assert p.stencil_radius == 1
        assert p.flops_per_element == 5.0
        assert p.sfu_per_element == 1.0


class TestExecution:
    def test_copy_identity(self):
        k = parse_kernel("""
            kernel copy(image in float a, image out float b) {
                b[x, y] = a[x, y];
            }
        """)
        img = np.random.default_rng(0).random((8, 12), dtype=np.float32)
        out = execute_kernel(k, {"a": img})
        np.testing.assert_array_equal(out["b"], img)

    def test_edge_matches_manual(self):
        k = compile_kernel(EDGE, 32, 24)
        img = k.make_inputs(np.random.default_rng(1))["img"]
        out = k.reference({"img": img})
        y, x = 10, 15
        gx = img[y, x + 1] - img[y, x - 1]
        gy = img[y + 1, x] - img[y - 1, x]
        assert out[y, x] == pytest.approx(
            np.sqrt(gx * gx + gy * gy), rel=1e-5
        )

    def test_edge_clamping(self):
        k = parse_kernel("""
            kernel left(image in float a, image out float b) {
                b[x, y] = a[x - 1, y];
            }
        """)
        img = np.arange(12, dtype=np.float32).reshape(3, 4)
        out = execute_kernel(k, {"a": img})["b"]
        # Column 0 clamps to itself.
        np.testing.assert_array_equal(out[:, 0], img[:, 0])
        np.testing.assert_array_equal(out[:, 1:], img[:, :-1])

    def test_scalar_parameters(self):
        k = parse_kernel("""
            kernel scale(image in float a, image out float b, float f) {
                b[x, y] = a[x, y] * f;
            }
        """)
        img = np.ones((4, 4), dtype=np.float32)
        out = execute_kernel(k, {"a": img}, {"f": 2.5})["b"]
        np.testing.assert_allclose(out, 2.5)

    def test_missing_scalar_rejected(self):
        k = parse_kernel("""
            kernel scale(image in float a, image out float b, float f) {
                b[x, y] = a[x, y] * f;
            }
        """)
        with pytest.raises(ValueError, match="scalar"):
            execute_kernel(k, {"a": np.ones((2, 2), np.float32)})

    def test_coordinates_available(self):
        k = parse_kernel("""
            kernel coords(image in float a, image out float b) {
                b[x, y] = x + y * 100.0;
            }
        """)
        out = execute_kernel(
            k, {"a": np.zeros((3, 5), np.float32)}
        )["b"]
        assert out[0, 4] == 4.0
        assert out[2, 1] == 201.0

    def test_ternary_execution(self):
        k = parse_kernel("""
            kernel thresh(image in float a, image out float b) {
                b[x, y] = a[x, y] > 0.5 ? 1.0 : 0.0;
            }
        """)
        img = np.array([[0.2, 0.8]], dtype=np.float32)
        out = execute_kernel(k, {"a": img})["b"]
        np.testing.assert_array_equal(out, [[0.0, 1.0]])

    def test_shape_mismatch_rejected(self):
        k = parse_kernel("""
            kernel add(image in float a, image in float b,
                       image out float c) {
                c[x, y] = a[x, y] + b[x, y];
            }
        """)
        with pytest.raises(ValueError, match="shapes differ"):
            execute_kernel(k, {
                "a": np.zeros((2, 2), np.float32),
                "b": np.zeros((2, 3), np.float32),
            })


class TestDslVsBuiltinSuite:
    """DSL re-implementations must match the hand-written kernels."""

    def test_dsl_add_matches_builtin(self):
        from repro.kernels import AddKernel

        dsl = compile_kernel("""
            kernel add(image in float a, image in float b,
                       image out float c) {
                c[x, y] = a[x, y] + b[x, y];
            }
        """, 64, 64)
        builtin = AddKernel(64, 64)
        inputs = builtin.make_inputs(np.random.default_rng(0))
        np.testing.assert_allclose(
            dsl.reference(inputs), builtin.reference(inputs), rtol=1e-6
        )
        # Static analysis agrees with the hand calibration.
        assert dsl.profile().reads_per_element == 2.0
        assert dsl.profile().writes_per_element == 1.0
        assert dsl.profile().flops_per_element == 1.0

    def test_dsl_kernel_is_tunable(self):
        """A compiled DSL kernel drops into the standard tuning loop."""
        from repro.gpu import TITAN_V, SimulatedDevice
        from repro.search import Objective, RandomSearchTuner

        kernel = compile_kernel(EDGE, 2048, 2048)
        device = SimulatedDevice(
            TITAN_V, kernel.profile(), rng=np.random.default_rng(0)
        )
        objective = Objective(
            kernel.space(), lambda c: device.measure(c).runtime_ms, 25
        )
        result = RandomSearchTuner().tune(
            objective, np.random.default_rng(1)
        )
        assert result.samples_used == 25
        assert np.isfinite(result.best_runtime_ms)
