"""Tests for the convergence (best-so-far) reporting panels."""

import math

import pytest

from repro.experiments.results import ExperimentResult, StudyResults
from repro.reporting import convergence_plot, convergence_plots, render_lineplot
from repro.reporting.convergence import _downsample_indices


def _result(alg, exp, curve, kernel="add", arch="titan_v", size=25):
    return ExperimentResult(
        algorithm=alg,
        kernel=kernel,
        arch=arch,
        sample_size=size,
        experiment=exp,
        final_runtime_ms=curve[-1],
        best_flat=0,
        observed_best_ms=curve[-1],
        samples_used=len(curve),
        convergence=list(curve),
    )


@pytest.fixture
def results():
    res = StudyResults()
    for exp, curve in enumerate([[5.0, 4.0, 3.0], [6.0, 6.0, 2.0]]):
        res.add(_result("random_search", exp, curve))
    for exp, curve in enumerate([[4.0, 3.0, 1.0], [5.0, 2.0, 2.0]]):
        res.add(_result("bo_gp", exp, curve))
    return res


class TestConvergencePlot:
    def test_one_series_per_algorithm(self, results):
        plot = convergence_plot(results, "add", "titan_v")
        assert [s.label for s in plot.series] == ["RS", "BO GP"]
        assert "S=25" in plot.title

    def test_median_and_iqr(self, results):
        plot = convergence_plot(results, "add", "titan_v")
        rs = plot.series[0]
        assert rs.x == [1, 2, 3]  # 1-based evaluation index
        assert rs.y == [5.5, 5.0, 2.5]
        assert rs.y_low[0] == pytest.approx(5.25)
        assert rs.y_high[0] == pytest.approx(5.75)

    def test_defaults_to_largest_sample_size(self, results):
        results.add(_result("random_search", 0, [9.0, 8.0], size=50))
        plot = convergence_plot(results, "add", "titan_v")
        assert "S=50" in plot.title
        assert len(plot.series) == 1  # only RS has curves at S=50

    def test_algorithm_subset(self, results):
        plot = convergence_plot(
            results, "add", "titan_v", algorithms=["bo_gp"]
        )
        assert [s.label for s in plot.series] == ["BO GP"]

    def test_missing_panel_raises(self, results):
        with pytest.raises(KeyError):
            convergence_plot(results, "harris", "titan_v")

    def test_no_curves_raises(self):
        res = StudyResults()
        res.add(_result("random_search", 0, [1.0]))
        res._results[0] = ExperimentResult(
            **{**res._results[0].__dict__, "convergence": []}
        )
        with pytest.raises(KeyError):
            convergence_plot(res, "add", "titan_v")

    def test_inf_prefix_is_dropped(self):
        res = StudyResults()
        res.add(_result("random_search", 0, [math.inf, 4.0, 3.0]))
        res.add(_result("random_search", 1, [math.inf, 5.0, 5.0]))
        plot = convergence_plot(res, "add", "titan_v")
        series = plot.series[0]
        assert series.x == [2, 3]  # index 1 median is inf -> nan -> dropped
        assert series.y == [4.5, 4.0]

    def test_renders(self, results):
        text = render_lineplot(convergence_plot(results, "add", "titan_v"))
        assert "Convergence add on titan_v" in text
        assert "legend:" in text

    def test_downsampling(self, results):
        plot = convergence_plot(results, "add", "titan_v", max_points=2)
        assert plot.series[0].x == [1, 3]  # first and last always kept


class TestDownsampleIndices:
    def test_short_curves_untouched(self):
        assert list(_downsample_indices(5, 10)) == [0, 1, 2, 3, 4]

    def test_keeps_endpoints(self):
        idx = list(_downsample_indices(100, 7))
        assert idx[0] == 0
        assert idx[-1] == 99
        assert len(idx) == 7


class TestConvergencePlots:
    def test_panels_per_kernel_arch(self, results):
        results.add(_result("random_search", 0, [2.0, 1.0], kernel="harris"))
        panels = convergence_plots(results)
        assert set(panels) == {("add", "titan_v"), ("harris", "titan_v")}

    def test_empty_results(self):
        assert convergence_plots(StudyResults()) == {}
