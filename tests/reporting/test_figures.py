"""Unit tests for the paper-figure generators over synthetic results."""

import numpy as np
import pytest

from repro.experiments import ExperimentResult, StudyResults
from repro.reporting import (
    algorithm_label,
    figure2,
    figure3,
    figure4a,
    figure4b,
)


@pytest.fixture
def results():
    """Synthetic study: 2 algorithms, 2 kernels, 1 arch, 2 sizes.

    'good' is always 20% faster than 'random_search'.
    """
    res = StudyResults(
        optima={("add", "titan_v"): 0.8, ("harris", "titan_v"): 0.4}
    )
    rng = np.random.default_rng(0)
    for kernel, base in (("add", 1.0), ("harris", 0.5)):
        for size in (25, 100):
            for exp in range(20):
                noise = 1.0 + 0.02 * rng.standard_normal()
                for alg, factor in (("random_search", 1.0), ("good", 0.8)):
                    res.add(
                        ExperimentResult(
                            algorithm=alg,
                            kernel=kernel,
                            arch="titan_v",
                            sample_size=size,
                            experiment=exp,
                            final_runtime_ms=base * factor * noise,
                            best_flat=exp,
                            observed_best_ms=base * factor,
                            samples_used=size,
                        )
                    )
    return res


class TestLabels:
    def test_known_algorithms(self):
        assert algorithm_label("bo_gp") == "BO GP"
        assert algorithm_label("random_search") == "RS"

    def test_unknown_passthrough(self):
        assert algorithm_label("good") == "good"


class TestFigure2:
    def test_panel_grid(self, results):
        fig = figure2(results)
        assert set(fig.panels) == {
            ("add", "titan_v"), ("harris", "titan_v"),
        }
        panel = fig.panels[("add", "titan_v")]
        assert panel.values.shape == (2, 2)  # 2 algs x 2 sizes

    def test_percent_values(self, results):
        panel = figure2(results).panels[("add", "titan_v")]
        # RS: 0.8 optimum / ~1.0 runtime = ~80%.
        rs_row = panel.values[0]
        assert rs_row[0] == pytest.approx(80.0, rel=0.05)
        good_row = panel.values[1]
        assert good_row[0] == pytest.approx(100.0, rel=0.05)

    def test_csv_export(self, results):
        csv = figure2(results).to_csv()
        assert "# figure2_percent_of_optimum add/titan_v" in csv
        assert "harris/titan_v" in csv


class TestFigure3:
    def test_series_per_algorithm(self, results):
        plot = figure3(results)
        assert [s.label for s in plot.series] == ["RS", "good"]
        for s in plot.series:
            assert list(s.x) == [25, 100]

    def test_ci_band_present_and_ordered(self, results):
        plot = figure3(results)
        for s in plot.series:
            for lo, mid, hi in zip(s.y_low, s.y, s.y_high):
                assert lo <= mid <= hi

    def test_aggregate_is_mean_of_cell_medians(self, results):
        plot = figure3(results)
        rs = plot.series[0]
        expected = np.mean(
            [
                results.median_percent_of_optimum(
                    "random_search", k, "titan_v", 25
                )
                for k in ("add", "harris")
            ]
        )
        assert rs.y[0] == pytest.approx(expected)


class TestFigure4:
    def test_speedup_excludes_baseline(self, results):
        fig = figure4a(results)
        panel = fig.panels[("add", "titan_v")]
        assert panel.row_labels == ["good"]

    def test_speedup_value(self, results):
        panel = figure4a(results).panels[("add", "titan_v")]
        assert panel.values[0, 0] == pytest.approx(1.25, rel=0.03)

    def test_cles_value(self, results):
        panel = figure4b(results).panels[("harris", "titan_v")]
        # 'good' is 20% faster with 2% noise: it nearly always wins.
        assert panel.values[0, 0] > 0.95

    def test_missing_baseline_rejected(self, results):
        from repro.experiments import StudyResults

        no_rs = StudyResults(
            [r for r in results.results if r.algorithm != "random_search"],
            optima=results.optima,
        )
        with pytest.raises(ValueError):
            figure4a(no_rs)
