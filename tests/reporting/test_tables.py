"""Unit tests for table generators."""

import numpy as np
import pytest

from repro.experiments import ExperimentDesign, ExperimentResult, StudyResults
from repro.reporting import (
    render_significance,
    significance_matrix,
    table1_row,
    variance_table,
)


class TestTable1Row:
    def test_paper_design_row(self):
        row = table1_row(ExperimentDesign())
        assert row["samples"] == "25-400"
        assert row["experiments"] == "800-50"
        assert row["evaluations"] == "10"
        assert row["significance_test"] == "Mann-Whitney U"
        assert row["research_field"] == "Autotuning"

    def test_scaled_design_reports_true_scale(self):
        row = table1_row(
            ExperimentDesign(sample_sizes=(25, 100),
                             experiments_at_largest=5)
        )
        assert row["samples"] == "25-100"
        assert row["experiments"] == "20-5"


def synthetic_results(spread=0.02):
    res = StudyResults(optima={("add", "titan_v"): 0.8})
    rng = np.random.default_rng(0)
    for alg, base in (("rs", 1.0), ("ga", 0.8), ("rf", 1.01)):
        for exp in range(60):
            res.add(
                ExperimentResult(
                    algorithm=alg, kernel="add", arch="titan_v",
                    sample_size=25, experiment=exp,
                    final_runtime_ms=base * (1 + spread * rng.standard_normal()),
                    best_flat=exp, observed_best_ms=base, samples_used=25,
                )
            )
    return res


class TestSignificanceMatrix:
    def test_all_pairs_present(self):
        cells = significance_matrix(synthetic_results(), "add", "titan_v", 25)
        pairs = {(c.algorithm_a, c.algorithm_b) for c in cells}
        assert pairs == {("rs", "ga"), ("rs", "rf"), ("ga", "rf")}

    def test_clear_difference_significant(self):
        cells = significance_matrix(synthetic_results(), "add", "titan_v", 25)
        rs_ga = next(c for c in cells if {c.algorithm_a, c.algorithm_b}
                     == {"rs", "ga"})
        assert rs_ga.significant
        assert rs_ga.p_value < 0.01

    def test_one_percent_rule_blocks_tiny_delta(self):
        """rs vs rf differ by 1% in median: not 'significant' per the
        paper's combined criterion even if p is small."""
        cells = significance_matrix(
            synthetic_results(spread=0.001), "add", "titan_v", 25
        )
        rs_rf = next(c for c in cells if {c.algorithm_a, c.algorithm_b}
                     == {"rs", "rf"})
        assert abs(rs_rf.median_speedup - 1.0) < 0.02
        assert not rs_rf.significant

    def test_render(self):
        cells = significance_matrix(synthetic_results(), "add", "titan_v", 25)
        text = render_significance(cells)
        assert "pairwise comparisons" in text
        assert "speedup" in text
        assert render_significance([]) == "(no comparisons)"


class TestVarianceTable:
    def test_variance_decreases_with_sample_size(self):
        """Reproduce the Section V-B observation on synthetic data."""
        res = StudyResults()
        rng = np.random.default_rng(0)
        for size, spread in ((25, 0.3), (100, 0.1), (400, 0.03)):
            for exp in range(40):
                res.add(
                    ExperimentResult(
                        algorithm="rs", kernel="add", arch="titan_v",
                        sample_size=size, experiment=exp,
                        final_runtime_ms=1.0 + spread * abs(rng.standard_normal()),
                        best_flat=exp, observed_best_ms=1.0,
                        samples_used=size,
                    )
                )
        table = variance_table(res, "rs")
        assert table[25] > table[100] > table[400]
