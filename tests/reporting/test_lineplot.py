"""Unit tests for ASCII line plots."""

import pytest

from repro.reporting import LinePlot, Series, render_lineplot


@pytest.fixture
def plot():
    return LinePlot(
        title="convergence",
        series=[
            Series("RS", x=[25, 100, 400], y=[50.0, 70.0, 85.0]),
            Series(
                "GA", x=[25, 100, 400], y=[48.0, 75.0, 95.0],
                y_low=[45.0, 72.0, 92.0], y_high=[51.0, 78.0, 98.0],
            ),
        ],
        x_label="sample size",
    )


class TestSeries:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            Series("s", x=[1, 2], y=[1.0])
        with pytest.raises(ValueError):
            Series("s", x=[1, 2], y=[1.0, 2.0], y_low=[1.0])


class TestLinePlot:
    def test_csv_long_format(self, plot):
        csv = plot.to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == "series,x,y,y_low,y_high"
        assert len(lines) == 1 + 6
        assert any(line.startswith("GA,400,95.0,92.0,98.0")
                   for line in lines)

    def test_render_contains_labels(self, plot):
        text = render_lineplot(plot)
        assert "convergence" in text
        assert "legend:" in text
        assert "RS" in text and "GA" in text
        assert "sample size" in text

    def test_render_ticks(self, plot):
        text = render_lineplot(plot)
        for tick in ("25", "100", "400"):
            assert tick in text

    def test_empty_plot_rejected(self):
        with pytest.raises(ValueError):
            render_lineplot(LinePlot("t", series=[]))

    def test_flat_series_safe(self):
        p = LinePlot("t", [Series("s", x=[1, 2], y=[5.0, 5.0])])
        text = render_lineplot(p)
        assert "t" in text

    def test_markers_drawn_for_each_series(self, plot):
        text = render_lineplot(plot, width=40, height=10)
        canvas = "\n".join(text.split("\n")[1:-3])
        assert "o" in canvas and "x" in canvas
        assert "." in canvas  # connecting segments
