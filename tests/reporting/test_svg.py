"""Tests for SVG figure rendering."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.reporting import Heatmap, LinePlot, Series
from repro.reporting.svg import heatmap_svg, lineplot_svg, save_figure_svg


@pytest.fixture
def heatmap():
    return Heatmap(
        title="demo <panel>",
        row_labels=["RS", "GA"],
        col_labels=["25", "400"],
        values=np.array([[50.0, 80.0], [45.0, np.nan]]),
    )


@pytest.fixture
def plot():
    return LinePlot(
        title="conv",
        series=[
            Series("RS", x=[25, 400], y=[50.0, 85.0]),
            Series("GA", x=[25, 400], y=[48.0, 95.0],
                   y_low=[45.0, 92.0], y_high=[51.0, 98.0]),
        ],
        x_label="sample size",
    )


class TestHeatmapSvg:
    def test_valid_xml(self, heatmap):
        svg = heatmap_svg(heatmap)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_labels_and_values_present(self, heatmap):
        svg = heatmap_svg(heatmap)
        for token in ("RS", "GA", "25", "400", "50.0", "80.0"):
            assert token in svg

    def test_title_escaped(self, heatmap):
        svg = heatmap_svg(heatmap)
        assert "&lt;panel&gt;" in svg
        ET.fromstring(svg)  # escaping keeps it parseable

    def test_nan_rendered_as_na(self, heatmap):
        assert "n/a" in heatmap_svg(heatmap)

    def test_cell_count(self, heatmap):
        root = ET.fromstring(heatmap_svg(heatmap))
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        # background + 4 cells.
        assert len(rects) == 5


class TestLineplotSvg:
    def test_valid_xml(self, plot):
        ET.fromstring(lineplot_svg(plot))

    def test_series_drawn(self, plot):
        svg = lineplot_svg(plot)
        root = ET.fromstring(svg)
        polylines = [e for e in root.iter() if e.tag.endswith("polyline")]
        assert len(polylines) == 2
        polygons = [e for e in root.iter() if e.tag.endswith("polygon")]
        assert len(polygons) == 1  # only GA has a band

    def test_legend_and_ticks(self, plot):
        svg = lineplot_svg(plot)
        for token in ("RS", "GA", "sample size", "25", "400"):
            assert token in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lineplot_svg(LinePlot("t", series=[]))


class TestSaveFigureSvg:
    def test_saves_grid_panels(self, heatmap, tmp_path):
        from repro.reporting.figures import FigureGrid

        grid = FigureGrid(
            name="fig_demo",
            panels={("add", "titan_v"): heatmap,
                    ("harris", "gtx_980"): heatmap},
        )
        paths = save_figure_svg(grid, tmp_path)
        assert len(paths) == 2
        for p in paths:
            assert p.exists()
            ET.fromstring(p.read_text())

    def test_saves_lineplot(self, plot, tmp_path):
        paths = save_figure_svg(plot, tmp_path)
        assert len(paths) == 1
        assert paths[0].name == "figure.svg"
