"""Unit tests for text heatmap rendering."""

import numpy as np
import pytest

from repro.reporting import Heatmap, render_heatmap


@pytest.fixture
def heatmap():
    return Heatmap(
        title="demo",
        row_labels=["RS", "GA"],
        col_labels=["25", "400"],
        values=np.array([[50.0, 80.0], [45.0, 95.0]]),
    )


class TestHeatmap:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Heatmap("t", ["a"], ["b", "c"], np.zeros((2, 2)))

    def test_csv_layout(self, heatmap):
        csv = heatmap.to_csv()
        lines = csv.strip().split("\n")
        assert lines[0] == ",25,400"
        assert lines[1].startswith("RS,50")
        assert lines[2].startswith("GA,45")

    def test_render_contains_everything(self, heatmap):
        text = render_heatmap(heatmap)
        assert "demo" in text
        for token in ("RS", "GA", "25", "400"):
            assert token in text
        assert "95.0" in text

    def test_render_shading_extremes(self, heatmap):
        text = render_heatmap(heatmap)
        assert "█" in text  # max value gets the darkest glyph

    def test_render_without_shading(self, heatmap):
        text = render_heatmap(heatmap, shade=False)
        assert "█" not in text and "░" not in text

    def test_custom_format(self, heatmap):
        text = render_heatmap(heatmap, fmt="{:6.2f}", shade=False)
        assert "50.00" in text

    def test_nan_safe(self):
        hm = Heatmap("t", ["a"], ["b"], np.array([[np.nan]]))
        text = render_heatmap(hm)
        assert "nan" in text

    def test_fixed_scale(self, heatmap):
        # With vmax far above the data everything shades light.
        text = render_heatmap(heatmap, vmin=0, vmax=1e6)
        assert "█" not in text
