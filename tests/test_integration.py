"""Cross-module integration tests: the full pipeline at miniature scale.

These exercise searchspace -> kernels -> gpu -> search -> experiments ->
stats -> reporting together, asserting invariants that only hold when the
pieces compose correctly.
"""

import numpy as np
import pytest

from repro import (
    ExperimentDesign,
    StudyConfig,
    TITAN_V,
    SimulatedDevice,
    find_true_optimum,
    get_kernel,
    run_study,
)
from repro.reporting import figure2, figure3, figure4a, figure4b
from repro.search import Objective, make_tuner


@pytest.fixture(scope="module")
def mini_study():
    config = StudyConfig(
        design=ExperimentDesign(sample_sizes=(25, 50),
                                experiments_at_largest=3),
        algorithms=("random_search", "genetic_algorithm", "bo_tpe"),
        kernels=("add", "mandelbrot"),
        archs=("titan_v",),
        image_x=2048,
        image_y=2048,
        workers=1,
    )
    return run_study(config)


class TestStudyPipeline:
    def test_all_cells_populated(self, mini_study):
        for alg in mini_study.algorithms:
            for kernel in mini_study.kernels:
                for size in (25, 50):
                    pop = mini_study.population(alg, kernel, "titan_v", size)
                    expected = 6 if size == 25 else 3
                    assert pop.shape == (expected,)
                    assert np.all(pop > 0)

    def test_percent_of_optimum_bounded(self, mini_study):
        """No algorithm can beat the true optimum by more than noise."""
        for alg in mini_study.algorithms:
            for kernel in mini_study.kernels:
                for size in (25, 50):
                    pct = mini_study.percent_of_optimum(
                        alg, kernel, "titan_v", size
                    )
                    assert np.all(pct <= 115.0)
                    assert np.all(pct > 0.0)

    def test_every_figure_renders(self, mini_study):
        from repro.reporting import render_heatmap, render_lineplot

        for fig in (figure2(mini_study), figure4a(mini_study),
                    figure4b(mini_study)):
            for panel in fig.panels.values():
                text = render_heatmap(panel)
                assert len(text) > 0
            assert len(fig.to_csv()) > 0
        assert len(render_lineplot(figure3(mini_study))) > 0

    def test_json_roundtrip_preserves_figures(self, mini_study, tmp_path):
        from repro.experiments import StudyResults

        path = tmp_path / "study.json"
        mini_study.save(path)
        loaded = StudyResults.load(path)
        orig = figure2(mini_study).panels[("add", "titan_v")].values
        again = figure2(loaded).panels[("add", "titan_v")].values
        np.testing.assert_allclose(orig, again)


class TestTunerAgainstTrueOptimum:
    def test_bo_gp_approaches_exhaustive_optimum(self):
        """BO GP at a 100-sample budget should reach a sizeable fraction
        of the exhaustively-computed optimum on a real landscape."""
        kernel = get_kernel("add")
        space = kernel.space()
        profile = kernel.profile()
        optimum = find_true_optimum(profile, TITAN_V, space)

        device = SimulatedDevice(
            TITAN_V, profile, rng=np.random.default_rng(0)
        )
        objective = Objective(
            space, lambda c: device.measure(c).runtime_ms, budget=100
        )
        result = make_tuner("bo_gp").tune(
            objective, np.random.default_rng(1)
        )
        assert result.best_runtime_ms < 3.0 * optimum.runtime_ms

    def test_optimum_unbeatable_without_noise_luck(self):
        """No search result on the noiseless simulator can undercut the
        exhaustive optimum."""
        kernel = get_kernel("mandelbrot", 2048, 2048)
        space = kernel.space()
        profile = kernel.profile()
        optimum = find_true_optimum(profile, TITAN_V, space)

        from repro.gpu import NOISELESS

        device = SimulatedDevice(
            TITAN_V, profile, noise=NOISELESS,
            rng=np.random.default_rng(2),
        )
        objective = Objective(
            space, lambda c: device.measure(c).runtime_ms, budget=200
        )
        result = make_tuner("genetic_algorithm").tune(
            objective, np.random.default_rng(3)
        )
        assert result.best_runtime_ms >= optimum.runtime_ms - 1e-9
