"""Adaptive sequential replication: stopping rule, parity, resume.

The adaptive engine's contract has three legs:

* **Validity** — stopping decisions come from anytime-valid
  (alpha-spending-corrected) bootstrap CIs on each group's median
  percent-of-optimum, evaluated at deterministic looks.
* **Parity** — every replication it *does* run is bit-identical to the
  fixed design's cell (same cell-key-derived RNG streams); a group that
  runs to its ceiling reproduces the fixed study exactly.
* **Durability** — stop decisions are checkpointed and replayed verbatim
  on resume, so a resumed adaptive study is bit-identical to an
  uninterrupted one, checkpoint file included.

``time.perf_counter`` is pinned for byte-level checkpoint comparisons,
same as the batched-engine parity suite.
"""

import json
import time

import pytest

from repro.experiments import (
    AdaptiveConfig,
    ExperimentDesign,
    StudyConfig,
    run_study,
)
from repro.experiments.optimum import clear_optimum_cache
from repro.experiments.runner import FAIL_CELLS_ENV
from repro.gpu.landscape import LANDSCAPE_CACHE_ENV, clear_landscape_memo
from repro.obs import validate_trace_path


@pytest.fixture(autouse=True)
def isolated(monkeypatch):
    monkeypatch.delenv(LANDSCAPE_CACHE_ENV, raising=False)
    monkeypatch.delenv(FAIL_CELLS_ENV, raising=False)
    clear_landscape_memo()
    clear_optimum_cache()
    yield
    clear_landscape_memo()
    clear_optimum_cache()


def smoke_config(**kwargs):
    defaults = dict(
        design=ExperimentDesign(
            sample_sizes=(25,), experiments_at_largest=16
        ),
        algorithms=("random_search",),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=1,
    )
    defaults.update(kwargs)
    return StudyConfig(**defaults)


def loose():
    """Stops at the first look on any realistic smoke landscape."""
    return AdaptiveConfig(
        ci_target=50.0, batch_size=4, min_replications=4, n_resamples=200
    )


def strict():
    """Never satisfiable: every group runs to its ceiling."""
    return AdaptiveConfig(
        ci_target=1e-9, batch_size=4, min_replications=4, n_resamples=200
    )


class TestAdaptiveConfig:
    def test_replication_schedule_ends_at_ceiling(self):
        design = ExperimentDesign(
            sample_sizes=(25,), experiments_at_largest=14
        )
        cfg = AdaptiveConfig(batch_size=4, min_replications=4)
        assert cfg.replication_schedule(design, 25) == [4, 8, 12, 14]

    def test_max_replications_tightens_ceiling(self):
        design = ExperimentDesign(
            sample_sizes=(25,), experiments_at_largest=16
        )
        cfg = AdaptiveConfig(
            batch_size=4, min_replications=4, max_replications=10
        )
        assert cfg.ceiling_for(design, 25) == 10
        assert cfg.replication_schedule(design, 25) == [4, 8, 10]

    def test_ceiling_never_exceeds_design(self):
        # The fixed design sizes the pre-collected dataset; the adaptive
        # ceiling must stay within it.
        design = ExperimentDesign(
            sample_sizes=(25,), experiments_at_largest=6
        )
        cfg = AdaptiveConfig(
            batch_size=8, min_replications=8, max_replications=100
        )
        assert cfg.ceiling_for(design, 25) == 6
        assert cfg.replication_schedule(design, 25) == [6]

    def test_alpha_spending_sums_to_alpha(self):
        cfg = AdaptiveConfig(confidence=0.95)
        spent = sum(cfg.alpha_at_look(k) for k in range(1, 10_000))
        assert spent < 0.05
        assert spent == pytest.approx(0.05, rel=1e-3)
        assert cfg.confidence_at_look(1) == pytest.approx(0.975)

    def test_later_looks_are_stricter(self):
        cfg = AdaptiveConfig()
        confs = [cfg.confidence_at_look(k) for k in range(1, 6)]
        assert confs == sorted(confs)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(ci_target=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(confidence=1.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(batch_size=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(min_replications=1)
        with pytest.raises(ValueError):
            AdaptiveConfig(max_replications=1)
        with pytest.raises(ValueError):
            AdaptiveConfig(n_resamples=0)
        with pytest.raises(ValueError):
            AdaptiveConfig().alpha_at_look(0)


class TestAdaptiveStudy:
    def test_requires_compute_optima(self):
        with pytest.raises(ValueError, match="compute_optima"):
            run_study(
                smoke_config(), compute_optima=False, adaptive=loose()
            )

    def test_stops_early_and_results_match_fixed_prefix(self, tmp_path):
        config = smoke_config()
        cache = tmp_path / "cache"
        adaptive = run_study(config, landscape_cache=cache, adaptive=loose())
        meta = adaptive.metadata["adaptive"]
        (record,) = meta["groups"].values()
        assert record["reason"] == "ci_target"
        assert record["replications"] == 4
        assert record["look"] == 1
        assert record["halfwidth"] <= 50.0
        assert meta["replications_executed"] == 4
        assert meta["replications_saved"] == 12
        assert len(adaptive.results) == 4

        # Every replication it ran is bit-identical to the fixed study's.
        clear_optimum_cache()
        fixed = run_study(config, landscape_cache=cache)
        assert adaptive.results == fixed.results[:4]
        assert adaptive.optima == fixed.optima

    def test_ceiling_reproduces_fixed_study(self, tmp_path):
        config = smoke_config()
        cache = tmp_path / "cache"
        adaptive = run_study(
            config, landscape_cache=cache, adaptive=strict()
        )
        (record,) = adaptive.metadata["adaptive"]["groups"].values()
        assert record["reason"] == "ceiling"
        assert record["replications"] == 16
        assert len(record["looks"]) == 4
        assert adaptive.metadata["adaptive"]["replications_saved"] == 0

        clear_optimum_cache()
        fixed = run_study(config, landscape_cache=cache)
        assert adaptive.results == fixed.results

    def test_deterministic_across_runs_and_workers(self, tmp_path):
        cache = tmp_path / "cache"
        a = run_study(
            smoke_config(), landscape_cache=cache, adaptive=loose()
        )
        clear_optimum_cache()
        b = run_study(
            smoke_config(workers=2), landscape_cache=cache, adaptive=loose()
        )
        assert a.results == b.results
        assert a.metadata["adaptive"] == b.metadata["adaptive"]

    def test_batched_dispatch_is_bit_identical(self, tmp_path):
        cache = tmp_path / "cache"
        sequential = run_study(
            smoke_config(), landscape_cache=cache, adaptive=loose()
        )
        clear_optimum_cache()
        batched = run_study(
            smoke_config(),
            landscape_cache=cache,
            adaptive=loose(),
            batch_replications=True,
        )
        assert sequential.results == batched.results
        assert (
            sequential.metadata["adaptive"] == batched.metadata["adaptive"]
        )

    def test_smbo_tuner_supported(self, tmp_path):
        # Live (non-dataset) tuners go through the same loop; their cells
        # carry no dataset slice.
        config = smoke_config(
            algorithms=("bo_tpe",),
            design=ExperimentDesign(
                sample_sizes=(25,), experiments_at_largest=8
            ),
        )
        adaptive = run_study(
            config,
            landscape_cache=tmp_path / "cache",
            adaptive=AdaptiveConfig(
                ci_target=50.0,
                batch_size=2,
                min_replications=2,
                n_resamples=100,
            ),
        )
        (record,) = adaptive.metadata["adaptive"]["groups"].values()
        assert record["replications"] < 8
        assert all(r.algorithm == "bo_tpe" for r in adaptive.results)

    def test_failed_cells_excluded_from_ci(self, tmp_path, monkeypatch):
        bad_cell = "random_search/add/titan_v/25/1"
        monkeypatch.setenv(FAIL_CELLS_ENV, bad_cell)
        results = run_study(
            smoke_config(),
            landscape_cache=tmp_path / "cache",
            adaptive=loose(),
            failure_policy="collect",
        )
        assert [f["cell_key"] for f in results.failed_cells] == [bad_cell]
        (record,) = results.metadata["adaptive"]["groups"].values()
        # The failed replication still counts toward the dispatched
        # budget; the CI simply sees one fewer sample.
        assert record["replications"] == 4
        assert len(results.results) == 3

    def test_metrics_and_telemetry_record_savings(self, tmp_path):
        results = run_study(
            smoke_config(), landscape_cache=tmp_path / "cache",
            adaptive=loose(),
        )
        metrics = results.metadata["metrics"]
        saved = metrics["adaptive_replications_saved_total"]["series"][0]
        assert saved["value"] == 12.0
        executed = metrics["adaptive_replications_executed_total"][
            "series"
        ][0]
        assert executed["value"] == 4.0
        stopped = metrics["adaptive_groups_stopped_total"]["series"][0]
        assert stopped["labels"] == {"reason": "ci_target"}
        telemetry = results.metadata["telemetry"]
        assert telemetry["groups_stopped"] == 1
        assert telemetry["replications_saved"] == 12
        assert telemetry["total"] == 4

    def test_stop_events_traced_and_schema_valid(self, tmp_path):
        trace_dir = tmp_path / "traces"
        run_study(
            smoke_config(),
            landscape_cache=tmp_path / "cache",
            adaptive=loose(),
            trace_dir=trace_dir,
        )
        assert validate_trace_path(trace_dir) == []
        stops = [
            doc
            for path in trace_dir.glob("trace-*.jsonl")
            for line in path.read_text().splitlines()
            for doc in [json.loads(line)]
            if doc["kind"] == "adaptive_stop"
        ]
        (stop,) = stops
        assert stop["cell"] == "random_search/add/titan_v/25"
        assert stop["reason"] == "ci_target"
        assert stop["replications"] == 4
        assert stop["budget"] == 16

    def test_fixed_path_metadata_untouched(self, tmp_path):
        results = run_study(
            smoke_config(
                design=ExperimentDesign(
                    sample_sizes=(25,), experiments_at_largest=2
                )
            ),
            landscape_cache=tmp_path / "cache",
        )
        assert results.metadata["adaptive"] is None


class TestAdaptiveResume:
    def _config(self):
        # Two replication groups so the resume can replay one stop
        # decision while re-deriving the other.
        return smoke_config(
            design=ExperimentDesign(
                sample_sizes=(25, 50), experiments_at_largest=8
            )
        )

    def test_resume_is_bit_identical_and_replays_stops(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(time, "perf_counter", lambda: 0.0)
        config = self._config()
        cache = tmp_path / "cache"
        adaptive = AdaptiveConfig(
            ci_target=50.0, batch_size=4, min_replications=4,
            n_resamples=200,
        )

        full_ckpt = tmp_path / "full.jsonl"
        full = run_study(
            config,
            checkpoint=full_ckpt,
            landscape_cache=cache,
            adaptive=adaptive,
        )
        full_lines = full_ckpt.read_bytes().splitlines(keepends=True)
        stop_positions = [
            i
            for i, line in enumerate(full_lines)
            if json.loads(line).get("kind") == "stopped"
        ]
        assert len(stop_positions) == 2  # one decision per group

        # Interrupt just after the first stop decision: one group's
        # decision is on disk, the other group is mid-flight.
        clear_optimum_cache()
        resumed_ckpt = tmp_path / "resumed.jsonl"
        resumed_ckpt.write_bytes(
            b"".join(full_lines[: stop_positions[0] + 1])
        )
        resumed = run_study(
            config,
            checkpoint=resumed_ckpt,
            landscape_cache=cache,
            adaptive=adaptive,
        )

        assert resumed.results == full.results
        assert resumed.metadata["adaptive"]["groups_replayed"] == 1
        assert (
            resumed.metadata["adaptive"]["groups"]
            == full.metadata["adaptive"]["groups"]
        )
        assert sorted(resumed_ckpt.read_bytes().splitlines()) == sorted(
            full_ckpt.read_bytes().splitlines()
        )

    def test_resume_before_any_stop(self, tmp_path, monkeypatch):
        monkeypatch.setattr(time, "perf_counter", lambda: 0.0)
        config = self._config()
        cache = tmp_path / "cache"
        adaptive = AdaptiveConfig(
            ci_target=50.0, batch_size=4, min_replications=4,
            n_resamples=200,
        )
        full_ckpt = tmp_path / "full.jsonl"
        full = run_study(
            config,
            checkpoint=full_ckpt,
            landscape_cache=cache,
            adaptive=adaptive,
        )

        # Keep only the header, the plan line, and the first two
        # completed cells: every stopping decision must be re-derived,
        # identically.
        clear_optimum_cache()
        lines = full_ckpt.read_bytes().splitlines(keepends=True)
        resumed_ckpt = tmp_path / "resumed.jsonl"
        resumed_ckpt.write_bytes(b"".join(lines[:4]))
        resumed = run_study(
            config,
            checkpoint=resumed_ckpt,
            landscape_cache=cache,
            adaptive=adaptive,
        )
        assert resumed.results == full.results
        assert resumed.metadata["adaptive"]["groups_replayed"] == 0
        assert resumed.metadata["resumed_from_checkpoint"] == 2
        assert sorted(resumed_ckpt.read_bytes().splitlines()) == sorted(
            full_ckpt.read_bytes().splitlines()
        )
