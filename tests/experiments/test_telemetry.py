"""Unit tests for study telemetry (counts, throughput, ETA, phases)."""

from repro.experiments import StudyTelemetry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestPhases:
    def test_phase_wall_time_recorded(self):
        clock = FakeClock()
        t = StudyTelemetry(clock=clock)
        with t.phase("dataset"):
            clock.advance(2.5)
        with t.phase("optima"):
            clock.advance(1.0)
        assert t.phase_seconds["dataset"] == 2.5
        assert t.phase_seconds["optima"] == 1.0

    def test_repeated_phase_accumulates(self):
        clock = FakeClock()
        t = StudyTelemetry(clock=clock)
        for _ in range(3):
            with t.phase("experiments"):
                clock.advance(1.0)
        assert t.phase_seconds["experiments"] == 3.0


class TestProgress:
    def test_counts_and_throughput(self):
        clock = FakeClock()
        t = StudyTelemetry(clock=clock)
        t.start_tasks(10)
        for _ in range(4):
            clock.advance(0.5)
            t.task_finished(ok=True)
        clock.advance(0.5)
        t.task_finished(ok=False)
        assert t.completed == 4
        assert t.failed == 1
        assert t.throughput() == 5 / 2.5

    def test_eta(self):
        clock = FakeClock()
        t = StudyTelemetry(clock=clock)
        t.start_tasks(10)
        for _ in range(5):
            clock.advance(1.0)
            t.task_finished(ok=True)
        assert t.eta_seconds() == 5.0  # 5 remaining at 1/s

    def test_eta_none_before_any_finish(self):
        t = StudyTelemetry()
        t.start_tasks(10)
        assert t.eta_seconds() is None

    def test_emit_lines(self):
        lines = []
        clock = FakeClock()
        t = StudyTelemetry(emit=lines.append, report_every=2, clock=clock)
        t.start_tasks(4, skipped=3)
        for _ in range(4):
            clock.advance(1.0)
            t.task_finished(ok=True)
        assert any("checkpoint: 3 cells already complete" in l for l in lines)
        progress = [l for l in lines if l.startswith("experiments:")]
        assert progress[-1].startswith("experiments: 4/4")

    def test_snapshot_is_json_ready(self):
        import json

        clock = FakeClock()
        t = StudyTelemetry(clock=clock)
        with t.phase("dataset"):
            clock.advance(1.0)
        t.start_tasks(2)
        clock.advance(1.0)
        t.task_finished(ok=True)
        snap = json.loads(json.dumps(t.snapshot()))
        assert snap["completed"] == 1
        assert snap["phase_seconds"]["dataset"] == 1.0

    def test_snapshot_total_and_eta(self):
        clock = FakeClock()
        t = StudyTelemetry(clock=clock)
        t.start_tasks(4)
        clock.advance(1.0)
        t.task_finished(ok=True)
        snap = t.snapshot()
        assert snap["total"] == 4
        assert snap["eta_seconds"] == 3.0  # 3 remaining at 1/s

    def test_snapshot_eta_none_before_any_finish(self):
        t = StudyTelemetry()
        t.start_tasks(4)
        assert t.snapshot()["eta_seconds"] is None

    def test_snapshot_phase_list_ordered_with_started_at(self):
        clock = FakeClock()
        t = StudyTelemetry(clock=clock)
        with t.phase("dataset"):
            clock.advance(2.0)
        with t.phase("optima"):
            clock.advance(1.5)
        with t.phase("dataset"):  # repeated phases each get an entry
            clock.advance(0.5)
        phases = t.snapshot()["phases"]
        assert [p["name"] for p in phases] == ["dataset", "optima", "dataset"]
        assert [p["started_at"] for p in phases] == [0.0, 2.0, 3.5]
        assert [p["seconds"] for p in phases] == [2.0, 1.5, 0.5]
        # started_at values are monotonically non-decreasing.
        starts = [p["started_at"] for p in phases]
        assert starts == sorted(starts)
