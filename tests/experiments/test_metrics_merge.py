"""Cross-process metrics merge through the batched dispatch path.

Cell counter deltas ride inside each ``ExperimentResult.metrics`` and
are merged parent-side, so the merged study registry must be identical
no matter how tasks were packed into worker messages: per-task
dispatch, grouped batches, and grouped batches that degraded to the
per-task wholesale fallback all count the same work.
"""

import pytest

from repro.experiments import ExperimentDesign, StudyConfig, run_study
from repro.experiments.optimum import clear_optimum_cache
from repro.experiments.runner import (
    batch_group_key,
    run_experiment,
    run_experiment_batch,
)
from repro.experiments.study import _collect_datasets, build_tasks
from repro.gpu.landscape import clear_landscape_memo
from repro.obs import MetricsRegistry
from repro.parallel import ParallelMap


@pytest.fixture(autouse=True)
def isolated():
    clear_landscape_memo()
    clear_optimum_cache()
    yield
    clear_landscape_memo()
    clear_optimum_cache()


def _config(**kwargs):
    defaults = dict(
        design=ExperimentDesign(sample_sizes=(25,), experiments_at_largest=3),
        algorithms=("random_search", "genetic_algorithm"),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=2,
    )
    defaults.update(kwargs)
    return StudyConfig(**defaults)


def _tasks(config, tmp_path):
    datasets = _collect_datasets(config)
    return build_tasks(
        config, datasets, landscape_cache=str(tmp_path / "cache")
    )


def _counts(flat):
    """Deterministic work counters only: timing sums vary run to run,
    and landscape build/load counters depend on cache warmth, not on
    how tasks were dispatched."""
    return {
        name: value
        for name, value in flat.items()
        if "seconds" not in name and not name.startswith("landscape_")
    }


def _merge_outcomes(outcomes):
    registry = MetricsRegistry()
    for outcome in outcomes:
        assert outcome.ok, outcome.error
        registry.merge_flat(outcome.result.metrics)
    return _counts(registry.flat_counters())


def exploding_batch(tasks):
    """Module-level (picklable) batch engine that always fails wholesale."""
    raise RuntimeError("batch engine down")


class TestStudyMetricsMerge:
    def test_grouped_study_merges_identically_to_per_task(self, tmp_path):
        cache = tmp_path / "cache"
        # Warm the landscape cache first so neither measured run pays
        # the one-off table-build simulator pass in its parent counters.
        run_study(_config(), landscape_cache=cache)
        clear_optimum_cache()
        per_task = MetricsRegistry()
        run_study(
            _config(), metrics=per_task, landscape_cache=cache
        )
        clear_optimum_cache()
        grouped = MetricsRegistry()
        run_study(
            _config(),
            metrics=grouped,
            landscape_cache=cache,
            batch_replications=True,
        )
        assert _counts(per_task.flat_counters()) == _counts(
            grouped.flat_counters()
        )
        # And the merge actually saw worker-side counters.
        assert per_task.flat_counters()["evaluations_total"] > 0


class TestPoolMetricsMerge:
    def test_grouped_batches_merge_identically_at_two_workers(
        self, tmp_path
    ):
        config = _config()
        tasks = _tasks(config, tmp_path)
        flat = ParallelMap(workers=2).run(run_experiment, tasks)
        batched = ParallelMap(workers=2).run_grouped(
            run_experiment,
            run_experiment_batch,
            tasks,
            group_key=batch_group_key,
        )
        assert _merge_outcomes(flat) == _merge_outcomes(batched)

    def test_wholesale_fallback_merges_identically(self, tmp_path):
        # A broken batch engine degrades every batch to per-task
        # run_experiment in the workers; the merged counters must be
        # indistinguishable from a healthy per-task run.
        config = _config()
        tasks = _tasks(config, tmp_path)
        healthy = ParallelMap(workers=2).run(run_experiment, tasks)

        registry = MetricsRegistry()
        fallback = ParallelMap(workers=2, metrics=registry).run_grouped(
            run_experiment,
            exploding_batch,
            tasks,
            group_key=batch_group_key,
        )
        assert _merge_outcomes(healthy) == _merge_outcomes(fallback)
        # The wholesale batch attempt is visible in the retry counter —
        # degradation is observable, never silent.
        assert registry.counter("task_retries_total").value == float(
            len(tasks)
        )
        assert all(o.attempts == 2 for o in fallback)

    def test_fallback_results_byte_identical_to_per_task(self, tmp_path):
        config = _config(algorithms=("random_search",))
        tasks = _tasks(config, tmp_path)
        healthy = ParallelMap(workers=2).run(run_experiment, tasks)
        fallback = ParallelMap(workers=2).run_grouped(
            run_experiment,
            exploding_batch,
            tasks,
            group_key=batch_group_key,
        )
        assert [o.result for o in healthy] == [o.result for o in fallback]
        for h, f in zip(healthy, fallback):
            assert h.result.metrics == f.result.metrics
