"""run_study + the content-addressed result store.

The acceptance invariants:

* store **off** vs store **on-but-cold**: byte-identical checkpoints,
  identical results — a cold store changes nothing;
* store **warm**: every cell answered by lookup, dataset collection
  skipped, and the simulator never runs during the experiments phase;
* store hits stream into the checkpoint, so a later resume needs
  neither the store nor a re-run;
* adaptive replication groups short-circuit through the same entries.
"""

import pytest

from repro.experiments import (
    AdaptiveConfig,
    ExperimentDesign,
    StudyConfig,
    run_study,
)
from repro.experiments.optimum import clear_optimum_cache
from repro.gpu.landscape import clear_landscape_memo
from repro.obs import MetricsRegistry
from repro.store import STORE_ENV, ResultStore


@pytest.fixture(autouse=True)
def isolated(monkeypatch):
    monkeypatch.delenv(STORE_ENV, raising=False)
    clear_landscape_memo()
    clear_optimum_cache()
    yield
    clear_landscape_memo()
    clear_optimum_cache()


def tiny_config(**kwargs):
    defaults = dict(
        design=ExperimentDesign(sample_sizes=(25,), experiments_at_largest=2),
        algorithms=("random_search", "random_forest"),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=1,
    )
    defaults.update(kwargs)
    return StudyConfig(**defaults)


def run(tmp_path, name, lines=None, **kwargs):
    ckpt = tmp_path / f"{name}.jsonl"
    results = run_study(
        tiny_config(),
        checkpoint=str(ckpt),
        landscape_cache=str(tmp_path / "cache"),
        progress=lines.append if lines is not None else False,
        **kwargs,
    )
    return results, ckpt.read_bytes()


def result_key(results):
    return [
        (r.algorithm, r.kernel, r.arch, r.sample_size, r.experiment,
         r.final_runtime_ms, r.best_flat, r.observed_best_ms,
         tuple(r.convergence))
        for r in results.results
    ]


class TestColdStoreIsInvisible:
    def test_off_vs_cold_byte_identical(self, tmp_path):
        off, off_bytes = run(tmp_path, "off", result_store=False)
        cold, cold_bytes = run(
            tmp_path, "cold", result_store=tmp_path / "store"
        )
        assert cold_bytes == off_bytes
        assert result_key(cold) == result_key(off)
        assert off.metadata["result_store"] is None
        assert off.metadata["store_hits"] == 0
        assert cold.metadata["result_store"] == str(tmp_path / "store")
        assert cold.metadata["store_hits"] == 0


class TestWarmStore:
    def test_warm_study_answers_every_cell(self, tmp_path):
        store = tmp_path / "store"
        cold, _ = run(tmp_path, "cold", result_store=store)
        lines = []
        registry = MetricsRegistry()
        warm, _ = run(
            tmp_path, "warm", lines=lines,
            result_store=store, metrics=registry,
        )
        assert result_key(warm) == result_key(cold)
        total = warm.metadata["total_experiments"]
        assert warm.metadata["store_hits"] == total
        flat = registry.flat_counters()
        assert flat.get("result_store_hits_total", 0) >= total
        # The simulator never ran: landscapes came from cache, dataset
        # collection was skipped, every cell was a lookup.
        assert flat.get("simulator_evals_total", 0) == 0
        assert any("cells warm" in line for line in lines)
        assert any(
            "dataset collection skipped" in line for line in lines
        )

    def test_store_hits_stream_into_checkpoint(self, tmp_path):
        """A checkpoint fed purely by store hits resumes without either."""
        store = tmp_path / "store"
        cold, _ = run(tmp_path, "cold", result_store=store)
        _warm, warm_ckpt_bytes = run(
            tmp_path, "warm", result_store=store
        )
        assert warm_ckpt_bytes  # hits were recorded, not just returned
        resumed = run_study(
            tiny_config(),
            checkpoint=str(tmp_path / "warm.jsonl"),
            landscape_cache=str(tmp_path / "cache"),
            result_store=False,
        )
        assert result_key(resumed) == result_key(cold)
        assert resumed.metadata["resumed_from_checkpoint"] == (
            cold.metadata["total_experiments"]
        )

    def test_checkpointed_cells_migrate_into_store(self, tmp_path):
        """A finished checkpoint warms the store for everyone else."""
        cold, _ = run(tmp_path, "first", result_store=False)
        store = tmp_path / "store"
        # Same checkpoint, store now attached: cells replay from the
        # checkpoint and are written back to the store.
        second = run_study(
            tiny_config(),
            checkpoint=str(tmp_path / "first.jsonl"),
            landscape_cache=str(tmp_path / "cache"),
            result_store=store,
        )
        assert result_key(second) == result_key(cold)
        # A third run with a fresh checkpoint is warm purely via store.
        third, _ = run(tmp_path, "third", result_store=store)
        assert result_key(third) == result_key(cold)
        assert third.metadata["store_hits"] == (
            cold.metadata["total_experiments"]
        )

    def test_partial_store_runs_only_missing_cells(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold, _ = run(tmp_path, "cold", result_store=store)
        # Evict roughly half the entries.
        paths = [p for p, _d, r in store.entries() if r == "ok"]
        for path in paths[: len(paths) // 2]:
            path.unlink()
        partial, _ = run(tmp_path, "partial", result_store=store)
        assert result_key(partial) == result_key(cold)
        kept = len(paths) - len(paths) // 2
        assert partial.metadata["store_hits"] == kept


class TestAdaptiveShortCircuit:
    def _adaptive(self):
        return AdaptiveConfig(
            ci_target=50.0, batch_size=2, min_replications=2,
            n_resamples=100,
        )

    def test_adaptive_groups_short_circuit(self, tmp_path):
        store = tmp_path / "store"
        first, _ = run(
            tmp_path, "a1", result_store=store, adaptive=self._adaptive()
        )
        assert first.metadata["store_hits"] == 0
        second, _ = run(
            tmp_path, "a2", result_store=store, adaptive=self._adaptive()
        )
        assert result_key(second) == result_key(first)
        assert second.metadata["store_hits"] > 0
        assert second.metadata["store_hits"] == (
            second.metadata["total_experiments"]
        )
