"""Batched replication engine vs per-task execution: bit-identity.

The batched engine's whole contract mirrors the landscape-table one:
``batch_replications=True`` may share setup and vectorize across a
replication group, but every replication keeps its own cell-key-derived
RNG streams — so results, checkpoints, and traces must be *identical* to
the per-task path, not merely statistically equivalent.

Wall-clock timing sums in ``ExperimentResult.metrics`` are the one
legitimately nondeterministic checkpoint payload, so ``time.perf_counter``
is pinned for the byte-level comparisons (serial runs, so the pin covers
every cell).
"""

import json
import time

import pytest

from repro.experiments import ExperimentDesign, StudyConfig, run_study
from repro.experiments.optimum import clear_optimum_cache
from repro.experiments.runner import (
    FAIL_CELLS_ENV,
    batch_group_key,
    run_experiment,
    run_experiment_batch,
)
from repro.experiments.study import build_tasks, _collect_datasets
from repro.gpu.landscape import LANDSCAPE_CACHE_ENV, clear_landscape_memo
from repro.parallel import TaskFailure

ALL_PAPER_ALGORITHMS = (
    "random_search",
    "random_forest",
    "genetic_algorithm",
    "bo_gp",
    "bo_tpe",
)


@pytest.fixture(autouse=True)
def isolated(monkeypatch):
    monkeypatch.delenv(LANDSCAPE_CACHE_ENV, raising=False)
    monkeypatch.delenv(FAIL_CELLS_ENV, raising=False)
    clear_landscape_memo()
    clear_optimum_cache()
    yield
    clear_landscape_memo()
    clear_optimum_cache()


def smoke_config(**kwargs):
    defaults = dict(
        design=ExperimentDesign(sample_sizes=(25,), experiments_at_largest=3),
        algorithms=ALL_PAPER_ALGORITHMS,
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=1,
    )
    defaults.update(kwargs)
    return StudyConfig(**defaults)


class TestStudyParity:
    def test_all_paper_tuners_identical_with_tables(self, tmp_path):
        config = smoke_config()
        cache = tmp_path / "cache"
        sequential = run_study(config, landscape_cache=cache)
        clear_optimum_cache()
        batched = run_study(
            config, landscape_cache=cache, batch_replications=True
        )
        assert batched.metadata["batch_replications"] is True
        assert sequential.metadata["batch_replications"] is False
        assert sequential.results == batched.results
        assert sequential.optima == batched.optima
        for a, b in zip(sequential.results, batched.results):
            assert a.final_runtime_ms == b.final_runtime_ms
            assert a.observed_best_ms == b.observed_best_ms
            assert a.best_flat == b.best_flat
            assert a.convergence == b.convergence

    def test_identical_without_tables(self):
        # No landscape cache: the vectorized RS engine is unavailable and
        # every cell takes the shared-context fallback — still identical.
        config = smoke_config(
            algorithms=("random_search", "random_forest", "bo_tpe")
        )
        sequential = run_study(config, compute_optima=False)
        batched = run_study(
            config, compute_optima=False, batch_replications=True
        )
        assert sequential.results == batched.results

    def test_workers_do_not_change_results(self, tmp_path):
        config = smoke_config()
        cache = tmp_path / "cache"
        serial = run_study(
            config, landscape_cache=cache, batch_replications=True
        )
        clear_optimum_cache()
        parallel = run_study(
            smoke_config(workers=2),
            landscape_cache=cache,
            batch_replications=True,
        )
        assert serial.results == parallel.results

    def test_checkpoints_byte_identical_including_mid_group_resume(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(time, "perf_counter", lambda: 0.0)
        config = smoke_config()
        cache = tmp_path / "cache"

        seq_ckpt = tmp_path / "sequential.jsonl"
        run_study(config, checkpoint=seq_ckpt, landscape_cache=cache)
        clear_optimum_cache()

        batch_ckpt = tmp_path / "batched.jsonl"
        run_study(
            config,
            checkpoint=batch_ckpt,
            landscape_cache=cache,
            batch_replications=True,
        )
        assert seq_ckpt.read_bytes() == batch_ckpt.read_bytes()

        # Cell metrics survive the batched path byte-for-byte too.
        for line in seq_ckpt.read_text().splitlines():
            record = json.loads(line)
            if record.get("kind") == "result":
                assert "metrics" in record["data"]

        # Resume mid-group: truncate inside the first replication group
        # (3 RS experiments form one batch) and finish with the batched
        # engine — same results, same set of checkpoint lines.
        clear_optimum_cache()
        lines = batch_ckpt.read_bytes().splitlines(keepends=True)
        assert len(lines) > 2
        resumed_ckpt = tmp_path / "resumed.jsonl"
        # Header + plan line + first completed cell.
        resumed_ckpt.write_bytes(b"".join(lines[:3]))
        resumed = run_study(
            config,
            checkpoint=resumed_ckpt,
            landscape_cache=cache,
            batch_replications=True,
        )
        assert resumed.metadata["resumed_from_checkpoint"] == 1
        clear_optimum_cache()
        full = run_study(config, landscape_cache=cache)
        assert resumed.results == full.results
        assert sorted(resumed_ckpt.read_bytes().splitlines()) == sorted(
            batch_ckpt.read_bytes().splitlines()
        )

    def test_traces_identical(self, tmp_path, monkeypatch):
        monkeypatch.setattr(time, "perf_counter", lambda: 0.0)
        config = smoke_config(
            algorithms=("random_search", "random_forest", "genetic_algorithm")
        )
        cache = tmp_path / "cache"

        def trace_events(trace_dir):
            # The "t" wall-clock field is the only nondeterministic part
            # of a trace event (perf_counter is pinned, so spans carry
            # duration_s == 0.0); strip it and compare everything else.
            events = []
            for path in sorted(trace_dir.glob("trace-*.jsonl")):
                for line in path.read_text().splitlines():
                    doc = json.loads(line)
                    doc.pop("t", None)
                    events.append(doc)
            return events

        seq_dir = tmp_path / "seq-traces"
        run_study(
            config,
            compute_optima=False,
            landscape_cache=cache,
            trace_dir=seq_dir,
        )
        batch_dir = tmp_path / "batch-traces"
        batched = run_study(
            config,
            compute_optima=False,
            landscape_cache=cache,
            trace_dir=batch_dir,
            batch_replications=True,
        )
        assert batched.metadata["trace_dir"] == str(batch_dir)
        seq_events = trace_events(seq_dir)
        assert seq_events  # the study actually traced something
        assert seq_events == trace_events(batch_dir)


class TestFailuresUnderBatchedDispatch:
    def test_injected_failure_attributed_siblings_survive(
        self, tmp_path, monkeypatch
    ):
        config = smoke_config(algorithms=("random_search",))
        cache = tmp_path / "cache"
        bad_cell = "random_search/add/titan_v/25/1"
        monkeypatch.setenv(FAIL_CELLS_ENV, bad_cell)
        results = run_study(
            config,
            compute_optima=False,
            failure_policy="collect",
            landscape_cache=cache,
            batch_replications=True,
        )
        failed = results.failed_cells
        assert [f["cell_key"] for f in failed] == [bad_cell]
        assert failed[0]["error_type"] == "InjectedFailure"
        # The two sibling replications of the same batch completed, and
        # their payloads match an unpoisoned sequential run exactly.
        assert len(results.results) == 2
        clear_optimum_cache()
        monkeypatch.delenv(FAIL_CELLS_ENV)
        clean = run_study(
            config, compute_optima=False, landscape_cache=cache
        )
        by_exp = {r.experiment: r for r in clean.results}
        for r in results.results:
            assert r == by_exp[r.experiment]

    def test_injected_failure_fallback_path(self, tmp_path, monkeypatch):
        # RF groups take the shared-context fallback (live reserve > 0):
        # the failure must still land on exactly the injected cell.
        config = smoke_config(algorithms=("random_forest",))
        bad_cell = "random_forest/add/titan_v/25/0"
        monkeypatch.setenv(FAIL_CELLS_ENV, bad_cell)
        results = run_study(
            config,
            compute_optima=False,
            failure_policy="collect",
            landscape_cache=tmp_path / "cache",
            batch_replications=True,
        )
        assert [f["cell_key"] for f in results.failed_cells] == [bad_cell]
        assert {r.experiment for r in results.results} == {1, 2}

    def test_fail_fast_names_injected_cell(self, tmp_path, monkeypatch):
        from repro.parallel import TaskError

        config = smoke_config(algorithms=("random_search",))
        bad_cell = "random_search/add/titan_v/25/0"
        monkeypatch.setenv(FAIL_CELLS_ENV, bad_cell)
        with pytest.raises(TaskError) as err:
            run_study(
                config,
                compute_optima=False,
                landscape_cache=tmp_path / "cache",
                batch_replications=True,
            )
        assert err.value.task.cell_key == bad_cell


class TestRunExperimentBatch:
    def _tasks(self, config, tmp_path):
        datasets = _collect_datasets(config)
        return build_tasks(
            config, datasets, landscape_cache=str(tmp_path / "cache")
        )

    def test_matches_run_experiment_per_task(self, tmp_path, monkeypatch):
        monkeypatch.setattr(time, "perf_counter", lambda: 0.0)
        config = smoke_config()
        tasks = self._tasks(config, tmp_path)
        batched = run_experiment_batch(tasks)
        assert len(batched) == len(tasks)
        for task, item in zip(tasks, batched):
            assert not isinstance(item, TaskFailure)
            assert item == run_experiment(task)
            assert item.metrics == run_experiment(task).metrics

    def test_mixed_groups_handled(self, tmp_path):
        # run_experiment_batch splits mixed input by group key itself.
        config = smoke_config(
            algorithms=("random_search", "genetic_algorithm")
        )
        tasks = self._tasks(config, tmp_path)
        keys = {batch_group_key(t) for t in tasks}
        assert len(keys) == 2
        shuffled = tasks[::-1]
        batched = run_experiment_batch(shuffled)
        for task, item in zip(shuffled, batched):
            assert item == run_experiment(task)

    def test_bad_dataset_payload_fails_only_that_task(self, tmp_path):
        config = smoke_config(algorithms=("random_search",))
        tasks = self._tasks(config, tmp_path)
        from dataclasses import replace

        broken = replace(
            tasks[1],
            dataset_flats=tasks[1].dataset_flats[:-3],
            dataset_runtimes=tasks[1].dataset_runtimes[:-3],
        )
        batch = [tasks[0], broken, tasks[2]]
        items = run_experiment_batch(batch)
        assert items[0] == run_experiment(tasks[0])
        assert isinstance(items[1], TaskFailure)
        assert "dataset slice" in str(items[1].error)
        assert items[2] == run_experiment(tasks[2])

    def test_empty_batch(self):
        assert run_experiment_batch([]) == []
