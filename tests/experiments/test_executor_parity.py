"""Cross-backend study parity: the tentpole invariant made executable.

The same study dispatched through the serial, process, thread, and
socket (two loopback ``repro-worker`` subprocesses) backends must
produce byte-identical checkpoint files and identical results — work
placement can never leak into the science.
"""

import os
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
from repro.experiments import (
    ExperimentDesign,
    StudyConfig,
    run_study,
)
from repro.experiments.runner import FAIL_CELLS_ENV

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC_DIR = REPO_ROOT / "src"

FAILING_CELL = "genetic_algorithm/add/titan_v/25/1"


def tiny_config(**kwargs):
    defaults = dict(
        design=ExperimentDesign(sample_sizes=(25,), experiments_at_largest=2),
        algorithms=("random_search", "genetic_algorithm"),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=2,
    )
    defaults.update(kwargs)
    return StudyConfig(**defaults)


@contextmanager
def loopback_workers(address, count, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    if extra_env:
        env.update(extra_env)
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.parallel.worker", "connect",
                address, "--node", f"node{i}", "--retry", "10", "--quiet",
            ],
            env=env,
        )
        for i in range(count)
    ]
    try:
        yield procs
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def run_with_executor(executor, tmp_path, name, **study_kwargs):
    """One checkpointed study through ``executor``; returns (results, bytes)."""
    ckpt = tmp_path / f"{name}.jsonl"
    kwargs = dict(
        checkpoint=str(ckpt),
        executor=executor,
        landscape_cache=str(tmp_path / "cache"),
    )
    kwargs.update(study_kwargs)
    if executor == "socket":
        lines = []
        from repro.parallel.executors import SocketExecutor

        # Drive the study's own socket path by pre-announcing the bind:
        # an ephemeral port is only known after bind, so the test runs
        # the coordinator through run_study and attaches workers via
        # the address it announces.
        address_box = {}

        def capture(line):
            lines.append(line)
            if "listening on" in line and "address" not in address_box:
                address_box["address"] = line.split("listening on ")[1].split(
                    " "
                )[0]
                procs = loopback_workers(address_box["address"], 2)
                address_box["procs"] = procs
                procs.__enter__()

        try:
            results = run_study(
                tiny_config(),
                progress=capture,
                min_workers=2,
                **kwargs,
            )
        finally:
            if "procs" in address_box:
                address_box["procs"].__exit__(None, None, None)
        return results, ckpt.read_bytes()
    results = run_study(tiny_config(), **kwargs)
    return results, ckpt.read_bytes()


def result_key(results):
    return [
        (r.algorithm, r.kernel, r.arch, r.sample_size, r.experiment,
         r.final_runtime_ms, r.best_flat, r.observed_best_ms)
        for r in results.results
    ]


class TestCheckpointByteIdentity:
    def test_local_backends_byte_identical(self, tmp_path):
        reference, ref_bytes = run_with_executor("serial", tmp_path, "serial")
        assert ref_bytes  # the checkpoint actually streamed
        for name in ("process", "thread"):
            results, blob = run_with_executor(name, tmp_path, name)
            assert blob == ref_bytes, f"{name} checkpoint diverged"
            assert result_key(results) == result_key(reference)
            assert results.metadata["executor"] == name

    def test_socket_backend_byte_identical(self, tmp_path):
        reference, ref_bytes = run_with_executor("serial", tmp_path, "serial")
        results, blob = run_with_executor("socket", tmp_path, "socket")
        assert blob == ref_bytes, "socket checkpoint diverged"
        assert result_key(results) == result_key(reference)
        assert results.metadata["executor"] == "socket"

    def test_batched_grouped_dispatch_byte_identical(self, tmp_path):
        reference, ref_bytes = run_with_executor(
            "serial", tmp_path, "serial-b", batch_replications=True
        )
        results, blob = run_with_executor(
            "process", tmp_path, "process-b", batch_replications=True
        )
        assert blob == ref_bytes
        assert result_key(results) == result_key(reference)


class TestResume:
    def test_truncated_checkpoint_resumes_identically(self, tmp_path):
        _, full_bytes = run_with_executor("serial", tmp_path, "full")
        # Keep the header, plan, and first result line; drop the rest —
        # a mid-study interruption.
        lines = full_bytes.splitlines(keepends=True)
        truncated = b"".join(lines[:3])
        resumed_path = tmp_path / "resumed.jsonl"
        resumed_path.write_bytes(truncated)
        results = run_study(
            tiny_config(),
            checkpoint=str(resumed_path),
            executor="process",
            landscape_cache=str(tmp_path / "cache"),
        )
        assert results.metadata["resumed_from_checkpoint"] == 1
        assert resumed_path.read_bytes() == full_bytes


class TestFailureAttribution:
    def test_injected_failure_attributed_to_node(self, tmp_path):
        # The env var reaches the repro-worker subprocesses through
        # inherited environment, exactly like a real multi-node drill.
        os.environ[FAIL_CELLS_ENV] = FAILING_CELL
        try:
            serial_results, serial_bytes = run_with_executor(
                "serial", tmp_path, "serial-f", failure_policy="collect"
            )
            results, blob = run_with_executor(
                "socket", tmp_path, "socket-f", failure_policy="collect"
            )
        finally:
            del os.environ[FAIL_CELLS_ENV]
        assert blob == serial_bytes, (
            "failure lines must not embed worker identity"
        )
        assert len(results.failed_cells) == 1
        failed = results.failed_cells[0]
        assert failed["cell_key"] == FAILING_CELL
        assert failed["error_type"] == "InjectedFailure"
        # node attribution lives in metadata only
        assert failed["node"] in ("node0", "node1")
        assert serial_results.failed_cells[0]["node"] is None
