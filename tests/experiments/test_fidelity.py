"""Unit tests for problem-size fidelity measurement."""

import numpy as np
import pytest

from repro.experiments.fidelity import make_fidelity_measure
from repro.gpu import TITAN_V
from repro.parallel import RngFactory

GOOD = {"thread_x": 1, "thread_y": 1, "thread_z": 1,
        "wg_x": 8, "wg_y": 4, "wg_z": 1}


class TestMakeFidelityMeasure:
    def test_full_fidelity_matches_full_size(self):
        measure = make_fidelity_measure(
            "add", TITAN_V, full_x=2048, full_y=2048,
            rng_factory=RngFactory(0),
        )
        rt = measure(GOOD, 1.0)
        assert np.isfinite(rt) and rt > 0

    def test_runtime_scales_with_fidelity(self):
        measure = make_fidelity_measure(
            "add", TITAN_V, full_x=4096, full_y=4096,
            rng_factory=RngFactory(0),
        )
        quarter = measure(GOOD, 0.25)
        full = measure(GOOD, 1.0)
        # Quarter-area run is much cheaper, but overheads keep the ratio
        # above the naive 4x.
        assert full / quarter > 2.0

    def test_low_fidelity_is_biased_not_exact(self):
        """Launch overhead makes low-fidelity time more than area-scaled —
        the realistic bias HyperBand must cope with."""
        measure = make_fidelity_measure(
            "add", TITAN_V, full_x=4096, full_y=4096,
            rng_factory=RngFactory(0),
        )
        sixteenth = measure(GOOD, 1 / 16)
        full = measure(GOOD, 1.0)
        assert sixteenth > full / 16 * 0.9

    def test_min_side_floor(self):
        measure = make_fidelity_measure(
            "add", TITAN_V, full_x=256, full_y=256, min_side=128,
            rng_factory=RngFactory(0),
        )
        # Even a tiny fidelity cannot shrink below min_side.
        rt = measure(GOOD, 1e-4)
        assert np.isfinite(rt)

    def test_invalid_fidelity(self):
        measure = make_fidelity_measure(
            "add", TITAN_V, full_x=512, full_y=512,
            rng_factory=RngFactory(0),
        )
        with pytest.raises(ValueError):
            measure(GOOD, 0.0)
        with pytest.raises(ValueError):
            measure(GOOD, 1.1)

    def test_too_small_problem_rejected(self):
        with pytest.raises(ValueError):
            make_fidelity_measure("add", TITAN_V, full_x=16, full_y=16)

    def test_reproducible_with_factory(self):
        a = make_fidelity_measure(
            "harris", TITAN_V, full_x=1024, full_y=1024,
            rng_factory=RngFactory(5),
        )
        b = make_fidelity_measure(
            "harris", TITAN_V, full_x=1024, full_y=1024,
            rng_factory=RngFactory(5),
        )
        assert a(GOOD, 0.5) == b(GOOD, 0.5)

    def test_device_cache_reused(self):
        measure = make_fidelity_measure(
            "add", TITAN_V, full_x=1024, full_y=1024,
            rng_factory=RngFactory(0),
        )
        # Same fidelity twice: second draw comes from the same noise
        # stream (different value), proving the device persisted.
        r1 = measure(GOOD, 0.5)
        r2 = measure(GOOD, 0.5)
        assert r1 != r2
