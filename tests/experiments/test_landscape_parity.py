"""Table-backed vs live studies must be byte-identical.

The landscape-table fast path's whole contract is *bit-identity*: same
runtimes, same RNG consumption, same checkpoints — with or without the
cache.  These tests run the same smoke study twice (tables on / tables
off) and compare results, optima, and the raw checkpoint files.

Wall-clock timing sums in ``ExperimentResult.metrics``
(``evaluate_seconds_sum`` & co.) are the one legitimately nondeterministic
payload in a checkpoint line, so ``time.perf_counter`` is pinned to a
constant for the byte-level comparison; the study runs serial
(``workers=1``) so the pin applies to every cell.
"""

import time

import numpy as np
import pytest

from repro.experiments import ExperimentDesign, StudyConfig, run_study
from repro.experiments.optimum import clear_optimum_cache
from repro.gpu.landscape import LANDSCAPE_CACHE_ENV, clear_landscape_memo


@pytest.fixture(autouse=True)
def isolated(monkeypatch):
    monkeypatch.delenv(LANDSCAPE_CACHE_ENV, raising=False)
    clear_landscape_memo()
    clear_optimum_cache()
    yield
    clear_landscape_memo()
    clear_optimum_cache()


def smoke_config(**kwargs):
    defaults = dict(
        design=ExperimentDesign(sample_sizes=(25,), experiments_at_largest=2),
        algorithms=("random_search", "genetic_algorithm", "bo_gp"),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=1,
    )
    defaults.update(kwargs)
    return StudyConfig(**defaults)


class TestStudyParity:
    def test_results_and_optima_identical(self, tmp_path):
        config = smoke_config()
        live = run_study(config)
        clear_optimum_cache()
        backed = run_study(config, landscape_cache=tmp_path / "cache")
        assert backed.metadata["landscape_cache"] == str(tmp_path / "cache")
        assert live.metadata["landscape_cache"] is None

        assert live.results == backed.results
        assert live.optima == backed.optima
        # Spot-check the payloads are *exactly* equal, not approximately.
        for a, b in zip(live.results, backed.results):
            assert a.final_runtime_ms == b.final_runtime_ms
            assert a.observed_best_ms == b.observed_best_ms
            assert a.best_flat == b.best_flat
            assert a.convergence == b.convergence

    def test_checkpoints_byte_identical_including_resume(
        self, tmp_path, monkeypatch
    ):
        # Pin the only nondeterministic checkpoint payload (timing sums).
        monkeypatch.setattr(time, "perf_counter", lambda: 0.0)
        config = smoke_config()

        live_ckpt = tmp_path / "live.jsonl"
        run_study(config, checkpoint=live_ckpt)
        clear_optimum_cache()

        backed_ckpt = tmp_path / "backed.jsonl"
        run_study(
            config,
            checkpoint=backed_ckpt,
            landscape_cache=tmp_path / "cache",
        )
        assert live_ckpt.read_bytes() == backed_ckpt.read_bytes()

        # Resuming a live checkpoint with tables on completes it to the
        # same bytes a fresh table-backed run would produce: drop the
        # trailing lines and rerun.
        clear_optimum_cache()
        lines = live_ckpt.read_bytes().splitlines(keepends=True)
        assert len(lines) > 4
        resumed_ckpt = tmp_path / "resumed.jsonl"
        # Header + plan line + first two completed cells.
        resumed_ckpt.write_bytes(b"".join(lines[:4]))
        resumed = run_study(
            config,
            checkpoint=resumed_ckpt,
            landscape_cache=tmp_path / "cache",
        )
        assert resumed.metadata["resumed_from_checkpoint"] == 2
        full = run_study(config, landscape_cache=tmp_path / "cache")
        assert resumed.results == full.results
        # Same set of result lines, modulo completion order (the resumed
        # file appends the remaining cells after the kept prefix).
        assert sorted(resumed_ckpt.read_bytes().splitlines()) == sorted(
            live_ckpt.read_bytes().splitlines()
        )

    def test_env_var_enables_tables(self, tmp_path, monkeypatch):
        config = smoke_config(algorithms=("genetic_algorithm",))
        live = run_study(config)
        clear_optimum_cache()
        monkeypatch.setenv(LANDSCAPE_CACHE_ENV, str(tmp_path / "envcache"))
        backed = run_study(config)
        assert backed.metadata["landscape_cache"] == str(
            tmp_path / "envcache"
        )
        assert (tmp_path / "envcache").exists()
        assert live.results == backed.results

    def test_warm_cache_reused_across_studies(self, tmp_path):
        config = smoke_config(algorithms=("genetic_algorithm",))
        cache = tmp_path / "cache"
        first = run_study(config, landscape_cache=cache)
        sidecars = sorted(p.name for p in cache.glob("*.json"))
        assert len(sidecars) == 1
        clear_optimum_cache()
        clear_landscape_memo()
        second = run_study(config, landscape_cache=cache)
        assert first.results == second.results
        assert first.optima == second.optima
        assert sorted(p.name for p in cache.glob("*.json")) == sidecars
