"""Unit tests for the experimental design scaling rules."""

import pytest

from repro.experiments import ExperimentDesign, paper_design


class TestPaperDesign:
    def test_paper_schedule(self):
        """Section V-B / footnote 1: S in {25..400}, E in {800..50}."""
        d = paper_design()
        assert d.schedule == {25: 800, 50: 400, 100: 200, 200: 100, 400: 50}

    def test_dataset_invariant(self):
        """S * E = 20,000 for every sample size — the dataset size the
        paper pre-collects (Section VI-B)."""
        d = paper_design()
        for s, e in d.schedule.items():
            assert s * e == 20_000
        assert d.dataset_rows_required == 20_000

    def test_total_samples_matches_paper_footnote(self):
        """Footnote 1 counts ~3M samples over 3 SMBO algorithms x 3
        benchmarks x 3 architectures plus RS/RF datasets and final
        re-evaluations; check our accounting is the right magnitude."""
        d = paper_design()
        per_combo = d.total_samples(final_repeats=10)
        smbo = 3 * 3 * 3 * per_combo
        datasets = 3 * 3 * 20_000
        # RS re-evals + RF (datasets shared): roughly counted in the 3M.
        assert 2_000_000 < smbo + datasets < 4_000_000


class TestScaling:
    def test_inverse_scaling(self):
        d = ExperimentDesign(sample_sizes=(10, 20, 40),
                             experiments_at_largest=5)
        assert d.schedule == {10: 20, 20: 10, 40: 5}

    def test_rounding(self):
        d = ExperimentDesign(sample_sizes=(30, 400),
                             experiments_at_largest=5)
        assert d.experiments_for(30) == round(5 * 400 / 30)

    def test_unknown_sample_size(self):
        with pytest.raises(ValueError):
            paper_design().experiments_for(33)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentDesign(sample_sizes=())
        with pytest.raises(ValueError):
            ExperimentDesign(sample_sizes=(50, 25))  # not ascending
        with pytest.raises(ValueError):
            ExperimentDesign(sample_sizes=(25, 25))  # duplicate
        with pytest.raises(ValueError):
            ExperimentDesign(sample_sizes=(0, 25))
        with pytest.raises(ValueError):
            ExperimentDesign(experiments_at_largest=0)

    def test_describe(self):
        text = ExperimentDesign(sample_sizes=(25,),
                                experiments_at_largest=3).describe()
        assert "S=25" in text and "E=3" in text
