"""Unit tests for pre-collected datasets."""

import numpy as np
import pytest

from repro.experiments import PrecollectedDataset, collect_dataset
from repro.gpu import TITAN_V, SimulatedDevice
from repro.kernels import get_kernel


@pytest.fixture
def setup():
    kernel = get_kernel("add", 1024, 1024)
    space = kernel.space()
    device = SimulatedDevice(
        TITAN_V, kernel.profile(), rng=np.random.default_rng(0)
    )
    return kernel, space, device


class TestCollect:
    def test_size_and_finiteness(self, setup):
        _, space, device = setup
        ds = collect_dataset(device, space, 200, np.random.default_rng(1))
        assert ds.size == 200
        # Constraint sampling: every row is feasible, so every
        # measurement succeeded.
        assert np.all(np.isfinite(ds.runtimes_ms))

    def test_rows_are_feasible(self, setup):
        _, space, device = setup
        ds = collect_dataset(device, space, 100, np.random.default_rng(2))
        for f in ds.flats[:30]:
            assert space.is_feasible(space.flat_to_config(int(f)))

    def test_counts_launches(self, setup):
        _, space, device = setup
        collect_dataset(device, space, 150, np.random.default_rng(3))
        assert device.launches == 150

    def test_reproducible(self, setup):
        kernel, space, _ = setup
        d1 = SimulatedDevice(TITAN_V, kernel.profile(),
                             rng=np.random.default_rng(9))
        d2 = SimulatedDevice(TITAN_V, kernel.profile(),
                             rng=np.random.default_rng(9))
        a = collect_dataset(d1, space, 50, np.random.default_rng(4))
        b = collect_dataset(d2, space, 50, np.random.default_rng(4))
        np.testing.assert_array_equal(a.flats, b.flats)
        np.testing.assert_array_equal(a.runtimes_ms, b.runtimes_ms)

    def test_invalid_size(self, setup):
        _, space, device = setup
        with pytest.raises(ValueError):
            collect_dataset(device, space, 0, np.random.default_rng(0))


class TestSlicing:
    def test_disjoint_slices(self):
        ds = PrecollectedDataset(
            flats=np.arange(100), runtimes_ms=np.arange(100.0)
        )
        s0 = ds.slice_for(25, 0)
        s1 = ds.slice_for(25, 1)
        np.testing.assert_array_equal(s0.flats, np.arange(25))
        np.testing.assert_array_equal(s1.flats, np.arange(25, 50))

    def test_partition_covers_everything(self):
        ds = PrecollectedDataset(
            flats=np.arange(100), runtimes_ms=np.zeros(100)
        )
        all_rows = np.concatenate(
            [ds.slice_for(25, i).flats for i in range(4)]
        )
        np.testing.assert_array_equal(np.sort(all_rows), np.arange(100))

    def test_out_of_range(self):
        ds = PrecollectedDataset(
            flats=np.arange(50), runtimes_ms=np.zeros(50)
        )
        with pytest.raises(ValueError):
            ds.slice_for(25, 2)
        with pytest.raises(ValueError):
            ds.slice_for(25, -1)

    def test_configs_decoding(self, setup):
        _, space, device = setup
        ds = collect_dataset(device, space, 10, np.random.default_rng(5))
        cfgs = ds.configs(space)
        assert len(cfgs) == 10
        for cfg, flat in zip(cfgs, ds.flats):
            assert space.config_to_flat(cfg) == flat

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PrecollectedDataset(
                flats=np.arange(5), runtimes_ms=np.zeros(4)
            )
        with pytest.raises(ValueError):
            PrecollectedDataset(
                flats=np.zeros((2, 2), dtype=np.int64),
                runtimes_ms=np.zeros((2, 2)),
            )
