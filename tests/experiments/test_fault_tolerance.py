"""Fault tolerance, checkpoint/resume and observability of run_study.

The acceptance scenario for the fault-tolerant executor: a study with an
injected per-cell failure completes, names the exact failing cell(s) in
``StudyResults.metadata``, and a resumed run from its checkpoint is
bit-identical to an uninterrupted run with the same ``root_seed``.
"""

import types

import pytest

from repro.experiments import (
    ExperimentDesign,
    NonFiniteResultError,
    StudyCheckpoint,
    StudyConfig,
    run_experiment,
    run_study,
)
from repro.experiments.runner import FAIL_CELLS_ENV, ExperimentTask
from repro.parallel import TaskError

FAILING_CELL = "genetic_algorithm/add/titan_v/25/1"


def tiny_config(**kwargs):
    defaults = dict(
        design=ExperimentDesign(sample_sizes=(25,), experiments_at_largest=2),
        algorithms=("random_search", "genetic_algorithm"),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=1,
    )
    defaults.update(kwargs)
    return StudyConfig(**defaults)


class TestInjectedFailure:
    def test_collect_completes_and_names_cell(self, monkeypatch):
        monkeypatch.setenv(FAIL_CELLS_ENV, FAILING_CELL)
        results = run_study(tiny_config(), failure_policy="collect")
        assert len(results) == 3  # 4 cells, 1 failed
        assert len(results.failed_cells) == 1
        failed = results.failed_cells[0]
        assert failed["cell_key"] == FAILING_CELL
        assert failed["error_type"] == "InjectedFailure"
        assert "injected failure" in failed["error"]
        assert failed["traceback"]

    def test_surviving_cells_unaffected(self, monkeypatch):
        baseline = run_study(tiny_config())
        monkeypatch.setenv(FAIL_CELLS_ENV, FAILING_CELL)
        partial = run_study(tiny_config(), failure_policy="collect")
        by_key = {
            (r.algorithm, r.experiment): r for r in partial.results
        }
        for r in baseline.results:
            key = (r.algorithm, r.experiment)
            if f"{r.algorithm}/add/titan_v/25/{r.experiment}" == FAILING_CELL:
                assert key not in by_key
            else:
                assert by_key[key] == r

    def test_fail_fast_names_cell(self, monkeypatch):
        monkeypatch.setenv(FAIL_CELLS_ENV, FAILING_CELL)
        with pytest.raises(TaskError) as err:
            run_study(tiny_config(), failure_policy="fail_fast")
        assert err.value.task.cell_key == FAILING_CELL

    def test_figures_survive_failed_cells(self, monkeypatch):
        from repro.reporting import figure2, figure3

        monkeypatch.setenv(FAIL_CELLS_ENV, FAILING_CELL)
        results = run_study(tiny_config(), failure_policy="collect")
        fig2 = figure2(results)
        assert fig2.panels
        assert figure3(results).series


@pytest.mark.parametrize("workers", [1, 2])
class TestCheckpointResume:
    def test_interrupted_resume_bit_identical(
        self, tmp_path, monkeypatch, workers
    ):
        config = tiny_config(workers=workers)
        baseline = run_study(config)

        # Interrupt: one injected failure under fail_fast kills the run,
        # but completed cells have already streamed to the checkpoint.
        ckpt_path = tmp_path / "study.jsonl"
        monkeypatch.setenv(FAIL_CELLS_ENV, FAILING_CELL)
        with pytest.raises(TaskError):
            run_study(config, checkpoint=ckpt_path)
        completed_before = len(StudyCheckpoint(ckpt_path))
        assert completed_before < len(baseline.results)

        # Resume with the failure gone: skips completed cells and the
        # merged results are bit-identical to the uninterrupted run.
        monkeypatch.delenv(FAIL_CELLS_ENV)
        resumed = run_study(config, checkpoint=ckpt_path)
        assert resumed.metadata["resumed_from_checkpoint"] == completed_before
        assert resumed.results == baseline.results
        assert resumed.optima == baseline.optima

    def test_fully_complete_checkpoint_skips_everything(
        self, tmp_path, workers
    ):
        config = tiny_config(workers=workers)
        ckpt_path = tmp_path / "study.jsonl"
        first = run_study(config, checkpoint=ckpt_path)
        again = run_study(config, checkpoint=ckpt_path)
        assert again.metadata["resumed_from_checkpoint"] == len(first.results)
        assert again.results == first.results


class TestTelemetryMetadata:
    def test_phase_times_and_counts_recorded(self):
        results = run_study(tiny_config())
        tele = results.metadata["telemetry"]
        assert tele["completed"] == 4
        assert tele["failed"] == 0
        assert "optima" in tele["phase_seconds"]
        assert "experiments" in tele["phase_seconds"]

    def test_progress_callable_receives_lines(self):
        lines = []
        run_study(tiny_config(), progress=lines.append)
        assert any(l.startswith("running 4 experiments") for l in lines)
        assert any(l.startswith("experiments: 4/4") for l in lines)


class TestNonFiniteResult:
    def _task(self):
        return ExperimentTask(
            algorithm="genetic_algorithm",
            kernel="add",
            arch="titan_v",
            sample_size=25,
            experiment=0,
            root_seed=1,
            image_x=512,
            image_y=512,
        )

    def test_non_finite_final_runtime_raises(self, monkeypatch):
        from repro.gpu.device import SimulatedDevice

        def all_launches_fail(self, config, repeats):
            return [
                types.SimpleNamespace(runtime_ms=float("inf"))
            ] * repeats

        monkeypatch.setattr(
            SimulatedDevice, "measure_repeated", all_launches_fail
        )
        with pytest.raises(NonFiniteResultError, match="non-finite"):
            run_experiment(self._task())

    def test_recorded_as_failed_cell_in_collect_mode(self, monkeypatch):
        from repro.gpu.device import SimulatedDevice

        real = SimulatedDevice.measure_repeated

        def fail_final_evaluation(self, config, repeats):
            if repeats > 1:  # only the final 10x re-evaluation
                return [
                    types.SimpleNamespace(runtime_ms=float("inf"))
                ] * repeats
            return real(self, config, repeats)

        monkeypatch.setattr(
            SimulatedDevice, "measure_repeated", fail_final_evaluation
        )
        results = run_study(
            tiny_config(algorithms=("genetic_algorithm",)),
            compute_optima=False,
            failure_policy="collect",
        )
        assert len(results) == 0
        assert len(results.failed_cells) == 2
        assert all(
            f["error_type"] == "NonFiniteResultError"
            for f in results.failed_cells
        )
