"""Unit tests for result containers, persistence, and derived metrics."""

import numpy as np
import pytest

from repro.experiments import ExperimentResult, StudyResults


def make_result(alg="rs", kernel="add", arch="titan_v", size=25, exp=0,
                runtime=1.0):
    return ExperimentResult(
        algorithm=alg,
        kernel=kernel,
        arch=arch,
        sample_size=size,
        experiment=exp,
        final_runtime_ms=runtime,
        best_flat=exp,
        observed_best_ms=runtime * 0.95,
        samples_used=size,
    )


@pytest.fixture
def results():
    res = StudyResults(optima={("add", "titan_v"): 0.5})
    for alg, base in (("rs", 1.0), ("ga", 0.8)):
        for exp in range(10):
            res.add(make_result(alg=alg, exp=exp,
                                runtime=base + 0.01 * exp))
    return res


class TestAxes:
    def test_axes_discovered(self, results):
        assert results.algorithms == ["rs", "ga"]
        assert results.kernels == ["add"]
        assert results.archs == ["titan_v"]
        assert results.sample_sizes == [25]

    def test_len(self, results):
        assert len(results) == 20


class TestPopulations:
    def test_population_values(self, results):
        pop = results.population("rs", "add", "titan_v", 25)
        assert pop.shape == (10,)
        assert pop[0] == pytest.approx(1.0)

    def test_missing_cell(self, results):
        with pytest.raises(KeyError):
            results.population("bo_gp", "add", "titan_v", 25)

    def test_missing_optimum(self, results):
        results.optima.clear()
        with pytest.raises(KeyError):
            results.percent_of_optimum("rs", "add", "titan_v", 25)


class TestDerivedMetrics:
    def test_percent_of_optimum(self, results):
        pct = results.percent_of_optimum("rs", "add", "titan_v", 25)
        assert pct[0] == pytest.approx(50.0)  # 0.5 / 1.0
        assert np.all(pct <= 50.0)

    def test_median_percent(self, results):
        med = results.median_percent_of_optimum("ga", "add", "titan_v", 25)
        assert 55.0 < med < 65.0

    def test_speedup_over(self, results):
        s = results.speedup_over("ga", "rs", "add", "titan_v", 25)
        assert s == pytest.approx(1.05 / 0.845, rel=0.02)
        assert s > 1.0

    def test_cles_over(self, results):
        c = results.cles_over("ga", "rs", "add", "titan_v", 25)
        assert c == 1.0  # ga always faster in this synthetic setup


class TestPersistence:
    def test_json_roundtrip(self, results, tmp_path):
        path = tmp_path / "res.json"
        results.metadata["note"] = "test"
        results.save(path)
        loaded = StudyResults.load(path)
        assert len(loaded) == len(results)
        assert loaded.metadata["note"] == "test"
        assert loaded.optima == results.optima
        np.testing.assert_array_equal(
            loaded.population("rs", "add", "titan_v", 25),
            results.population("rs", "add", "titan_v", 25),
        )

    def test_result_dataclass_roundtrip(self):
        r = make_result()
        doc = StudyResults([r]).to_json()
        loaded = StudyResults.from_json(doc)
        assert loaded.results[0] == r

    def test_pre_observability_files_still_load(self):
        # Files written before convergence/metrics existed lack both keys.
        doc = (
            '{"results": [{"algorithm": "rs", "kernel": "add", '
            '"arch": "titan_v", "sample_size": 25, "experiment": 0, '
            '"final_runtime_ms": 1.0, "best_flat": 0, '
            '"observed_best_ms": 0.95, "samples_used": 25}]}'
        )
        loaded = StudyResults.from_json(doc)
        assert loaded.results[0].convergence == []
        assert loaded.results[0].metrics == {}


class TestConvergence:
    def _add_curves(self, res, curves, alg="rs"):
        for exp, curve in enumerate(curves):
            r = make_result(alg=alg, exp=exp)
            res.add(
                ExperimentResult(**{**r.__dict__, "convergence": curve})
            )

    def test_curves_stacked(self):
        res = StudyResults()
        self._add_curves(res, [[3.0, 2.0, 2.0], [4.0, 4.0, 1.0]])
        curves = res.convergence_curves("rs", "add", "titan_v", 25)
        np.testing.assert_array_equal(
            curves, [[3.0, 2.0, 2.0], [4.0, 4.0, 1.0]]
        )

    def test_ragged_curves_padded_with_final_best(self):
        res = StudyResults()
        self._add_curves(res, [[3.0, 2.0, 2.0], [4.0, 1.0]])
        curves = res.convergence_curves("rs", "add", "titan_v", 25)
        np.testing.assert_array_equal(
            curves, [[3.0, 2.0, 2.0], [4.0, 1.0, 1.0]]
        )

    def test_no_curves_raises(self):
        res = StudyResults([make_result()])  # default: empty convergence
        with pytest.raises(KeyError):
            res.convergence_curves("rs", "add", "titan_v", 25)

    def test_stats_median_and_iqr(self):
        res = StudyResults()
        self._add_curves(res, [[4.0, 2.0], [2.0, 2.0], [6.0, 5.0]])
        stats = res.convergence_stats("rs", "add", "titan_v", 25)
        np.testing.assert_array_equal(stats["median"], [4.0, 2.0])
        np.testing.assert_array_equal(stats["n"], [3, 3])
        assert stats["q1"][0] == pytest.approx(3.0)
        assert stats["q3"][0] == pytest.approx(5.0)

    def test_stats_mask_inf_entries(self):
        res = StudyResults()
        self._add_curves(
            res, [[np.inf, 3.0], [5.0, 4.0]]
        )
        stats = res.convergence_stats("rs", "add", "titan_v", 25)
        assert stats["median"][0] == 5.0  # inf excluded, one finite value
        np.testing.assert_array_equal(stats["n"], [1, 2])

    def test_stats_all_inf_index_is_nan(self):
        res = StudyResults()
        self._add_curves(res, [[np.inf, 2.0], [np.inf, 3.0]])
        stats = res.convergence_stats("rs", "add", "titan_v", 25)
        assert np.isnan(stats["median"][0])
        assert stats["n"][0] == 0


class TestMetricsField:
    def test_metrics_excluded_from_equality(self):
        a = make_result()
        b = ExperimentResult(
            **{**a.__dict__, "metrics": {"evaluate_seconds_sum": 0.123}}
        )
        # Wall-clock metrics must not break the checkpoint-resume
        # bit-identical contract.
        assert a == b

    def test_convergence_included_in_equality(self):
        a = make_result()
        b = ExperimentResult(**{**a.__dict__, "convergence": [1.0]})
        assert a != b
