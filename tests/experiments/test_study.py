"""Integration tests for study orchestration (small scale)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentDesign,
    StudyConfig,
    build_tasks,
    run_study,
)
from repro.experiments.study import _collect_datasets, _needs_dataset


def tiny_config(**kwargs):
    defaults = dict(
        design=ExperimentDesign(sample_sizes=(25,), experiments_at_largest=2),
        algorithms=("random_search", "genetic_algorithm"),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=1,
    )
    defaults.update(kwargs)
    return StudyConfig(**defaults)


class TestConfig:
    def test_validate_ok(self):
        tiny_config().validate()

    def test_validate_bad_arch(self):
        with pytest.raises(KeyError):
            tiny_config(archs=("rtx_9090",)).validate()

    def test_validate_bad_algorithm(self):
        with pytest.raises(KeyError):
            tiny_config(algorithms=("annealing",)).validate()

    def test_validate_empty(self):
        with pytest.raises(ValueError):
            tiny_config(kernels=()).validate()

    def test_overrides_lookup(self):
        cfg = tiny_config(
            tuner_overrides=(("bo_gp", (("init_fraction", 0.2),)),)
        )
        assert dict(cfg.overrides_for("bo_gp")) == {"init_fraction": 0.2}
        assert cfg.overrides_for("random_search") == ()

    def test_needs_dataset_detection(self):
        assert _needs_dataset(tiny_config())
        assert not _needs_dataset(
            tiny_config(algorithms=("genetic_algorithm",))
        )


class TestTaskConstruction:
    def test_task_count(self):
        cfg = tiny_config(
            design=ExperimentDesign(sample_sizes=(25, 50),
                                    experiments_at_largest=2),
        )
        datasets = _collect_datasets(cfg)
        tasks = build_tasks(cfg, datasets)
        # 2 algorithms x 1 kernel x 1 arch x (E(25)=4 + E(50)=2).
        assert len(tasks) == 2 * (4 + 2)

    def test_dataset_attached_only_to_dataset_tuners(self):
        cfg = tiny_config()
        tasks = build_tasks(cfg, _collect_datasets(cfg))
        for t in tasks:
            if t.algorithm == "random_search":
                assert t.dataset_flats is not None
                assert len(t.dataset_flats) == t.sample_size
            else:
                assert t.dataset_flats is None

    def test_dataset_slices_disjoint_within_size(self):
        cfg = tiny_config()
        tasks = [
            t for t in build_tasks(cfg, _collect_datasets(cfg))
            if t.algorithm == "random_search"
        ]
        seen = set()
        for t in tasks:
            rows = set(t.dataset_flats)
            # Same slice must not be reused across experiments (overlap
            # of actual flat values could happen by chance; check by
            # (experiment, position) identity instead).
            key = (t.sample_size, t.experiment)
            assert key not in seen
            seen.add(key)


class TestRunStudy:
    def test_small_study_end_to_end(self):
        results = run_study(tiny_config())
        # 2 algorithms x 2 experiments.
        assert len(results) == 4
        assert results.optima  # true optimum computed
        pop = results.population("random_search", "add", "titan_v", 25)
        assert pop.shape == (2,)
        pct = results.percent_of_optimum(
            "random_search", "add", "titan_v", 25
        )
        assert np.all((pct > 0) & (pct <= 100.0 + 1e-9))

    def test_skip_optima(self):
        results = run_study(tiny_config(), compute_optima=False)
        assert results.optima == {}

    def test_parallel_matches_serial(self):
        serial = run_study(tiny_config(workers=1))
        parallel = run_study(tiny_config(workers=2))
        for r_s, r_p in zip(serial.results, parallel.results):
            assert r_s == r_p

    def test_metadata_recorded(self):
        results = run_study(tiny_config(), compute_optima=False)
        assert results.metadata["algorithms"] == [
            "random_search", "genetic_algorithm",
        ]
        assert results.metadata["total_experiments"] == 4


class TestStudyObservability:
    def test_results_carry_convergence_and_metrics(self):
        results = run_study(tiny_config(), compute_optima=False)
        for r in results.results:
            assert len(r.convergence) == r.samples_used
            # Best-so-far is non-increasing.
            assert all(
                b <= a for a, b in zip(r.convergence, r.convergence[1:])
            )
            assert r.metrics["evaluations_total"] == float(r.samples_used)

    def test_evaluations_total_is_samples_times_experiments(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        run_study(tiny_config(), compute_optima=False, metrics=registry)
        # 25 samples x 2 experiments x 2 algorithms.
        assert registry.counter("evaluations_total").value == 100.0
        assert registry.counter("simulator_evals_total").value > 0

    def test_metrics_in_metadata(self):
        import json

        results = run_study(tiny_config(), compute_optima=False)
        doc = results.metadata["metrics"]
        assert doc["evaluations_total"]["series"][0]["value"] == 100.0
        json.dumps(doc)  # JSON-serializable

    def test_trace_dir_produces_valid_per_cell_traces(self, tmp_path):
        import collections
        import json

        from repro.obs import validate_trace_path
        from repro.obs.read import iter_trace_events

        trace = tmp_path / "trace"
        run_study(tiny_config(), compute_optima=False, trace_dir=trace)
        assert validate_trace_path(trace) == []
        per_cell = collections.Counter(
            e["cell"]
            for e in iter_trace_events([trace])
            if e["kind"] == "evaluate"
        )
        assert len(per_cell) == 4
        assert all(n == 25 for n in per_cell.values())

    def test_tracing_does_not_change_results(self, tmp_path):
        bare = run_study(tiny_config(), compute_optima=False)
        traced = run_study(
            tiny_config(), compute_optima=False,
            trace_dir=tmp_path / "trace",
        )
        assert bare.results == traced.results

    def test_metrics_survive_checkpoint_resume(self, tmp_path, monkeypatch):
        from repro.obs import MetricsRegistry

        ckpt = tmp_path / "study.jsonl"
        cfg = tiny_config()
        # First run: one cell fails, three complete and checkpoint.
        monkeypatch.setenv(
            "REPRO_FAIL_CELLS", "genetic_algorithm/add/titan_v/25/1"
        )
        run_study(
            cfg, compute_optima=False, checkpoint=ckpt,
            failure_policy="collect",
        )
        monkeypatch.delenv("REPRO_FAIL_CELLS")
        # Resume: only the failed cell reruns, yet the aggregate counts
        # every cell (resumed metrics reload with their results).
        registry = MetricsRegistry()
        resumed = run_study(
            cfg, compute_optima=False, checkpoint=ckpt, metrics=registry,
        )
        assert len(resumed) == 4
        assert registry.counter("evaluations_total").value == 100.0
