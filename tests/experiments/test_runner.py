"""Unit tests for single-experiment execution."""

import numpy as np
import pytest

from repro.experiments import ExperimentTask, run_experiment
from repro.experiments.dataset import collect_dataset
from repro.gpu import TITAN_V, SimulatedDevice
from repro.kernels import get_kernel
from repro.parallel import RngFactory


def make_task(algorithm="genetic_algorithm", sample_size=25, **kwargs):
    defaults = dict(
        algorithm=algorithm,
        kernel="add",
        arch="titan_v",
        sample_size=sample_size,
        experiment=0,
        root_seed=123,
        image_x=1024,
        image_y=1024,
        final_repeats=10,
    )
    defaults.update(kwargs)
    return ExperimentTask(**defaults)


def dataset_slice(sample_size, seed=0):
    kernel = get_kernel("add", 1024, 1024)
    device = SimulatedDevice(
        TITAN_V, kernel.profile(), rng=np.random.default_rng(seed)
    )
    ds = collect_dataset(
        device, kernel.space(), sample_size, np.random.default_rng(seed)
    )
    return tuple(int(f) for f in ds.flats), tuple(
        float(r) for r in ds.runtimes_ms
    )


class TestLiveTuners:
    def test_ga_experiment_end_to_end(self):
        result = run_experiment(make_task())
        assert result.algorithm == "genetic_algorithm"
        assert result.sample_size == 25
        assert result.samples_used == 25
        assert np.isfinite(result.final_runtime_ms)
        assert result.final_runtime_ms > 0

    def test_reproducible_across_calls(self):
        a = run_experiment(make_task())
        b = run_experiment(make_task())
        assert a.final_runtime_ms == b.final_runtime_ms
        assert a.best_flat == b.best_flat

    def test_different_experiments_differ(self):
        a = run_experiment(make_task(experiment=0))
        b = run_experiment(make_task(experiment=1))
        assert a.best_flat != b.best_flat or (
            a.final_runtime_ms != b.final_runtime_ms
        )

    def test_final_runtime_close_to_observed(self):
        """10x re-evaluation mean should be near (not equal to) the
        best single observation."""
        r = run_experiment(make_task(sample_size=50))
        assert r.final_runtime_ms == pytest.approx(
            r.observed_best_ms, rel=0.8
        )
        assert r.final_runtime_ms != r.observed_best_ms


class TestDatasetTuners:
    def test_rs_uses_slice(self):
        flats, runtimes = dataset_slice(25)
        result = run_experiment(
            make_task(
                algorithm="random_search",
                dataset_flats=flats,
                dataset_runtimes=runtimes,
            )
        )
        assert result.samples_used == 25
        # RS picks the argmin of the slice.
        assert result.observed_best_ms == pytest.approx(min(runtimes))

    def test_rf_splits_train_and_live(self):
        flats, runtimes = dataset_slice(25)
        result = run_experiment(
            make_task(
                algorithm="random_forest",
                dataset_flats=flats,
                dataset_runtimes=runtimes,
                tuner_kwargs=(("n_estimators", 10),
                              ("candidate_pool", 256)),
            )
        )
        # 15 train rows + 10 live top-k evaluations.
        assert result.samples_used == 25

    def test_missing_dataset_rejected(self):
        with pytest.raises(ValueError, match="dataset"):
            run_experiment(make_task(algorithm="random_search"))

    def test_wrong_slice_size_rejected(self):
        flats, runtimes = dataset_slice(10)
        with pytest.raises(ValueError, match="rows"):
            run_experiment(
                make_task(
                    algorithm="random_search",
                    sample_size=25,
                    dataset_flats=flats,
                    dataset_runtimes=runtimes,
                )
            )


class TestSeeding:
    def test_cell_key_uniqueness(self):
        keys = {
            make_task(algorithm=a, sample_size=s, experiment=e).cell_key
            for a in ("bo_gp", "bo_tpe")
            for s in (25, 50)
            for e in (0, 1)
        }
        assert len(keys) == 8

    def test_root_seed_changes_everything(self):
        a = run_experiment(make_task(root_seed=1))
        b = run_experiment(make_task(root_seed=2))
        assert a.final_runtime_ms != b.final_runtime_ms
