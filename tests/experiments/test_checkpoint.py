"""Unit tests for the JSONL study checkpoint store."""

import json

import pytest

from repro.experiments import (
    CheckpointMismatchError,
    ExperimentResult,
    StudyCheckpoint,
)


def make_result(experiment=0, runtime=1.5):
    return ExperimentResult(
        algorithm="random_search",
        kernel="add",
        arch="titan_v",
        sample_size=25,
        experiment=experiment,
        final_runtime_ms=runtime,
        best_flat=123,
        observed_best_ms=1.4,
        samples_used=25,
    )


class TestRoundTrip:
    def test_results_survive_reload(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("rs/add/titan_v/25/0", make_result(0))
            ckpt.record_result("rs/add/titan_v/25/1", make_result(1, 2.5))

        reloaded = StudyCheckpoint(path, root_seed=42)
        assert len(reloaded) == 2
        assert "rs/add/titan_v/25/0" in reloaded
        assert reloaded.completed["rs/add/titan_v/25/1"] == make_result(1, 2.5)

    def test_failures_recorded_but_not_completed(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_failure(
                "rs/add/titan_v/25/0", error="boom", error_type="RuntimeError"
            )
        reloaded = StudyCheckpoint(path, root_seed=42)
        assert len(reloaded) == 0  # failed cells are retried on resume
        assert reloaded.failures["rs/add/titan_v/25/0"]["error"] == "boom"

    def test_append_across_sessions(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=7) as ckpt:
            ckpt.record_result("a", make_result(0))
        with StudyCheckpoint(path, root_seed=7) as ckpt:
            assert "a" in ckpt
            ckpt.record_result("b", make_result(1))
        assert len(StudyCheckpoint(path, root_seed=7)) == 2


class TestCorruptionHandling:
    def test_torn_final_line_ignored(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
            ckpt.record_result("b", make_result(1))
        # Simulate a kill mid-write: truncate the last line.
        text = path.read_text()
        path.write_text(text[: len(text) - 25])
        reloaded = StudyCheckpoint(path, root_seed=42)
        assert "a" in reloaded
        assert "b" not in reloaded  # torn row dropped, will be re-run

    def test_torn_tail_trimmed_before_append(self, tmp_path):
        # Resuming over a torn file must not glue the new line onto the
        # fragment — that would corrupt the file for every later resume.
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
            ckpt.record_result("b", make_result(1))
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # tear the last line
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            assert "b" not in ckpt
            ckpt.record_result("b", make_result(1))  # the re-run
        # Every line parses, and a third session sees both cells.
        for line in path.read_text().splitlines():
            json.loads(line)
        reloaded = StudyCheckpoint(path, root_seed=42)
        assert "a" in reloaded and "b" in reloaded
        assert len(reloaded) == 2

    def test_torn_tail_with_newline_trimmed(self, tmp_path):
        # An invalid final line that *does* end in a newline is dropped
        # too; trimming must remove the newline along with it.
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
        path.write_text(path.read_text() + '{"kind": "res\n')
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("b", make_result(1))
        for line in path.read_text().splitlines():
            json.loads(line)
        assert len(StudyCheckpoint(path, root_seed=42)) == 2

    def test_mid_file_garbage_rejected(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
        path.write_text("not json\n" + path.read_text())
        with pytest.raises(CheckpointMismatchError):
            StudyCheckpoint(path, root_seed=42)


class TestHeaderValidation:
    def test_seed_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
        with pytest.raises(CheckpointMismatchError, match="root_seed"):
            StudyCheckpoint(path, root_seed=43)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "version": 999, "root_seed": 42})
            + "\n"
        )
        with pytest.raises(CheckpointMismatchError, match="version"):
            StudyCheckpoint(path, root_seed=42)

    def test_none_seed_skips_validation(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
        inspect = StudyCheckpoint(path)  # read-only inspection
        assert "a" in inspect

    def test_unknown_kinds_skipped(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
        with path.open("a") as fh:
            fh.write(json.dumps({"kind": "future_extension", "x": 1}) + "\n")
        assert "a" in StudyCheckpoint(path, root_seed=42)


class TestHeaderlessRejection:
    def test_headerless_nonempty_file_rejected(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text(
            json.dumps({"kind": "failure", "cell_key": "a", "error": "x"})
            + "\n"
        )
        with pytest.raises(CheckpointMismatchError, match="no header"):
            StudyCheckpoint(path, root_seed=42)

    def test_torn_first_write_rejected(self, tmp_path):
        # A writer killed during its very first line leaves a non-empty
        # file whose only line is torn.  After torn-line trimming the
        # file parses to nothing — but it must still be rejected, because
        # its seed/version can never be validated.
        path = tmp_path / "ckpt.jsonl"
        path.write_text('{"kind": "header", "vers')
        with pytest.raises(CheckpointMismatchError, match="no header"):
            StudyCheckpoint(path, root_seed=42)

    def test_empty_file_still_fine(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text("")
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
        assert "a" in StudyCheckpoint(path, root_seed=42)

    def test_whitespace_only_file_still_fine(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text("\n\n")
        assert len(StudyCheckpoint(path, root_seed=42)) == 0


class TestStoppedLines:
    def test_stop_decisions_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        record = {
            "replications": 12,
            "budget": 32,
            "reason": "ci_target",
            "look": 2,
            "halfwidth": 0.75,
            "looks": [
                {"look": 1, "replications": 8, "halfwidth": 1.5},
                {"look": 2, "replications": 12, "halfwidth": 0.75},
            ],
        }
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("rs/add/titan_v/25/0", make_result(0))
            ckpt.record_stop("rs/add/titan_v/25", record)
        reloaded = StudyCheckpoint(path, root_seed=42)
        assert reloaded.stopped == {"rs/add/titan_v/25": record}
        # Stop lines never count as completed cells.
        assert len(reloaded) == 1

    def test_record_stop_copies_its_input(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        record = {"replications": 8, "reason": "ceiling"}
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_stop("g", record)
            record["replications"] = 999
        assert StudyCheckpoint(path, root_seed=42).stopped["g"][
            "replications"
        ] == 8
