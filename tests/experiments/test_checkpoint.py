"""Unit tests for the JSONL study checkpoint store."""

import json

import pytest

from repro.experiments import (
    CheckpointMismatchError,
    ExperimentResult,
    StudyCheckpoint,
)


def make_result(experiment=0, runtime=1.5):
    return ExperimentResult(
        algorithm="random_search",
        kernel="add",
        arch="titan_v",
        sample_size=25,
        experiment=experiment,
        final_runtime_ms=runtime,
        best_flat=123,
        observed_best_ms=1.4,
        samples_used=25,
    )


class TestRoundTrip:
    def test_results_survive_reload(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("rs/add/titan_v/25/0", make_result(0))
            ckpt.record_result("rs/add/titan_v/25/1", make_result(1, 2.5))

        reloaded = StudyCheckpoint(path, root_seed=42)
        assert len(reloaded) == 2
        assert "rs/add/titan_v/25/0" in reloaded
        assert reloaded.completed["rs/add/titan_v/25/1"] == make_result(1, 2.5)

    def test_failures_recorded_but_not_completed(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_failure(
                "rs/add/titan_v/25/0", error="boom", error_type="RuntimeError"
            )
        reloaded = StudyCheckpoint(path, root_seed=42)
        assert len(reloaded) == 0  # failed cells are retried on resume
        assert reloaded.failures["rs/add/titan_v/25/0"]["error"] == "boom"

    def test_append_across_sessions(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=7) as ckpt:
            ckpt.record_result("a", make_result(0))
        with StudyCheckpoint(path, root_seed=7) as ckpt:
            assert "a" in ckpt
            ckpt.record_result("b", make_result(1))
        assert len(StudyCheckpoint(path, root_seed=7)) == 2


class TestCorruptionHandling:
    def test_torn_final_line_ignored(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
            ckpt.record_result("b", make_result(1))
        # Simulate a kill mid-write: truncate the last line.
        text = path.read_text()
        path.write_text(text[: len(text) - 25])
        reloaded = StudyCheckpoint(path, root_seed=42)
        assert "a" in reloaded
        assert "b" not in reloaded  # torn row dropped, will be re-run

    def test_mid_file_garbage_rejected(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
        path.write_text("not json\n" + path.read_text())
        with pytest.raises(CheckpointMismatchError):
            StudyCheckpoint(path, root_seed=42)


class TestHeaderValidation:
    def test_seed_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
        with pytest.raises(CheckpointMismatchError, match="root_seed"):
            StudyCheckpoint(path, root_seed=43)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "version": 999, "root_seed": 42})
            + "\n"
        )
        with pytest.raises(CheckpointMismatchError, match="version"):
            StudyCheckpoint(path, root_seed=42)

    def test_none_seed_skips_validation(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
        inspect = StudyCheckpoint(path)  # read-only inspection
        assert "a" in inspect

    def test_unknown_kinds_skipped(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        with StudyCheckpoint(path, root_seed=42) as ckpt:
            ckpt.record_result("a", make_result(0))
        with path.open("a") as fh:
            fh.write(json.dumps({"kind": "future_extension", "x": 1}) + "\n")
        assert "a" in StudyCheckpoint(path, root_seed=42)
