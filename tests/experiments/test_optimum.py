"""Unit tests for exhaustive optimum scans."""

import numpy as np
import pytest

from repro.experiments import clear_optimum_cache, find_true_optimum
from repro.gpu import TITAN_V, simulate_runtimes
from repro.kernels import get_kernel
from repro.searchspace import IntegerParameter, SearchSpace, paper_search_space


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_optimum_cache()
    yield
    clear_optimum_cache()


@pytest.fixture
def small_space():
    """A reduced 6-parameter space (~4k configs) for exact cross-checks."""
    return SearchSpace(
        [
            IntegerParameter("thread_x", 1, 4),
            IntegerParameter("thread_y", 1, 4),
            IntegerParameter("thread_z", 1, 2),
            IntegerParameter("wg_x", 1, 8),
            IntegerParameter("wg_y", 1, 8),
            IntegerParameter("wg_z", 1, 2),
        ]
    )


class TestScan:
    def test_matches_brute_force_on_small_space(self, small_space):
        profile = get_kernel("add", 512, 512).profile()
        opt = find_true_optimum(profile, TITAN_V, small_space,
                                chunk_size=500)
        # Brute force with one vectorized pass.
        flats = np.arange(small_space.size)
        values = small_space.index_matrix_to_features(
            small_space.flats_to_index_matrix(flats)
        ).astype(np.int64)
        rts = simulate_runtimes(profile, TITAN_V, values).runtime_ms
        assert opt.runtime_ms == pytest.approx(np.min(rts))
        assert opt.flat_index == int(np.argmin(rts))

    def test_chunking_invariant(self, small_space):
        profile = get_kernel("harris", 512, 512).profile()
        a = find_true_optimum(profile, TITAN_V, small_space,
                              chunk_size=100, use_cache=False)
        b = find_true_optimum(profile, TITAN_V, small_space,
                              chunk_size=4096, use_cache=False)
        assert a.flat_index == b.flat_index
        assert a.runtime_ms == b.runtime_ms

    def test_optimum_is_feasible(self):
        space = paper_search_space()
        profile = get_kernel("add", 1024, 1024).profile()
        opt = find_true_optimum(profile, TITAN_V, space)
        assert space.is_feasible(opt.config)
        assert np.isfinite(opt.runtime_ms)
        # ``scanned`` reports rows actually considered: with
        # feasible_only the constrained-out rows are excluded.
        feasible_wg = sum(
            1
            for x in range(1, 9)
            for y in range(1, 9)
            for z in range(1, 9)
            if x * y * z <= 256
        )
        threads = 16 * 16 * 16
        assert opt.scanned == feasible_wg * threads
        assert 0 < opt.scanned < space.size

    def test_scanned_counts_whole_space_without_filter(self, small_space):
        profile = get_kernel("add", 512, 512).profile()
        opt = find_true_optimum(
            profile, TITAN_V, small_space, use_cache=False
        )
        assert opt.scanned == small_space.size

    def test_cache_hit_returns_same_object(self, small_space):
        profile = get_kernel("add", 512, 512).profile()
        a = find_true_optimum(profile, TITAN_V, small_space)
        b = find_true_optimum(profile, TITAN_V, small_space)
        assert a is b

    def test_cache_distinguishes_architectures(self, small_space):
        from repro.gpu import GTX_980

        profile = get_kernel("add", 512, 512).profile()
        a = find_true_optimum(profile, TITAN_V, small_space)
        b = find_true_optimum(profile, GTX_980, small_space)
        assert a.runtime_ms != b.runtime_ms

    def test_feasibility_filter_applied(self, small_space):
        """With a constraint tighter than the device limit, the scan must
        skip configurations the device itself could still launch."""
        from repro.searchspace import workgroup_product_limit

        tight = small_space.with_constraints(
            workgroup_product_limit(("wg_x", "wg_y", "wg_z"), 8)
        )
        profile = get_kernel("add", 512, 512).profile()
        opt = find_true_optimum(profile, TITAN_V, tight, use_cache=False)
        cfg = opt.config
        assert cfg["wg_x"] * cfg["wg_y"] * cfg["wg_z"] <= 8
