"""Tests for the extension tuners: SA, PSO, HyperBand, BOHB."""

import numpy as np
import pytest

from repro.gpu import TITAN_V
from repro.experiments.fidelity import make_fidelity_measure
from repro.parallel import RngFactory
from repro.search import (
    BohbTuner,
    BudgetExhausted,
    EXTENSION_ALGORITHM_NAMES,
    HyperbandTuner,
    MultiFidelityObjective,
    ParticleSwarmTuner,
    SimulatedAnnealingTuner,
    make_tuner,
)

from .conftest import make_quadratic_objective, make_sim_objective


class TestRegistry:
    def test_extensions_registered(self):
        assert set(EXTENSION_ALGORITHM_NAMES) == {
            "simulated_annealing", "particle_swarm",
        }
        for name in EXTENSION_ALGORITHM_NAMES:
            assert make_tuner(name).name == name


@pytest.mark.parametrize("name", EXTENSION_ALGORITHM_NAMES)
class TestMetaheuristicContract:
    def test_exact_budget(self, name):
        obj = make_sim_objective(40, seed=11)
        result = make_tuner(name).tune(obj, np.random.default_rng(12))
        assert result.samples_used == 40
        assert np.isfinite(result.best_runtime_ms)

    def test_reproducible(self, name):
        r1 = make_tuner(name).tune(
            make_sim_objective(30, seed=13), np.random.default_rng(14)
        )
        r2 = make_tuner(name).tune(
            make_sim_objective(30, seed=13), np.random.default_rng(14)
        )
        assert r1.history_runtimes == r2.history_runtimes

    def test_optimizes_quadratic(self, name):
        obj, _ = make_quadratic_objective(120)
        result = make_tuner(name).tune(obj, np.random.default_rng(15))
        assert result.best_runtime_ms <= 10.0


class TestSimulatedAnnealing:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingTuner(t_start=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealingTuner(t_start=0.1, t_end=0.2)
        with pytest.raises(ValueError):
            SimulatedAnnealingTuner(neighbour_hop=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealingTuner(restart_after=0)

    def test_neighbour_changes_one_dimension(self):
        tuner = SimulatedAnnealingTuner(neighbour_hop=0.0)
        obj = make_sim_objective(5, seed=0)
        rng = np.random.default_rng(0)
        genes = (3, 3, 3, 3, 3, 3)
        for _ in range(20):
            nxt = tuner._neighbour(genes, obj, rng)
            diffs = [abs(a - b) for a, b in zip(genes, nxt)]
            assert sum(d != 0 for d in diffs) <= 1
            assert max(diffs) <= 1  # adjacent steps only with hop=0


class TestParticleSwarm:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParticleSwarmTuner(num_particles=1)
        with pytest.raises(ValueError):
            ParticleSwarmTuner(inertia=-0.1)


@pytest.fixture
def mf_objective():
    measure = make_fidelity_measure(
        "add", TITAN_V, full_x=2048, full_y=2048,
        rng_factory=RngFactory(7),
    )
    return MultiFidelityObjective(
        space=make_sim_objective(1).space,
        measure=measure,
        budget_units=12.0,
    )


class TestMultiFidelityObjective:
    def test_budget_units_charged_by_fidelity(self, mf_objective):
        cfg = mf_objective.space.sample(np.random.default_rng(0), 1,
                                        feasible_only=True)[0]
        mf_objective.evaluate(cfg, fidelity=0.25)
        assert mf_objective.spent == pytest.approx(0.25)
        mf_objective.evaluate(cfg, fidelity=1.0)
        assert mf_objective.spent == pytest.approx(1.25)

    def test_budget_exhaustion(self, mf_objective):
        cfg = mf_objective.space.sample(np.random.default_rng(0), 1,
                                        feasible_only=True)[0]
        for _ in range(12):
            mf_objective.evaluate(cfg, fidelity=1.0)
        with pytest.raises(BudgetExhausted):
            mf_objective.evaluate(cfg, fidelity=1.0)

    def test_invalid_fidelity(self, mf_objective):
        cfg = mf_objective.space.sample(np.random.default_rng(0), 1,
                                        feasible_only=True)[0]
        with pytest.raises(ValueError):
            mf_objective.evaluate(cfg, fidelity=0.0)
        with pytest.raises(ValueError):
            mf_objective.evaluate(cfg, fidelity=1.5)

    def test_lower_fidelity_runs_faster(self, mf_objective):
        cfg = {"thread_x": 1, "thread_y": 1, "thread_z": 1,
               "wg_x": 8, "wg_y": 4, "wg_z": 1}
        low = mf_objective.evaluate(cfg, fidelity=1 / 16)
        high = mf_objective.evaluate(cfg, fidelity=1.0)
        assert low < high

    def test_best_at_highest_fidelity(self, mf_objective):
        rng = np.random.default_rng(1)
        cfgs = mf_objective.space.sample(rng, 3, feasible_only=True)
        mf_objective.evaluate(cfgs[0], fidelity=0.1)
        r1 = mf_objective.evaluate(cfgs[1], fidelity=1.0)
        r2 = mf_objective.evaluate(cfgs[2], fidelity=1.0)
        best_cfg, best_rt = mf_objective.best_at_highest_fidelity()
        assert best_rt == min(r1, r2)
        assert best_cfg in (cfgs[1], cfgs[2])


class TestHyperband:
    def test_validation(self):
        with pytest.raises(ValueError):
            HyperbandTuner(eta=1)
        with pytest.raises(ValueError):
            HyperbandTuner(s_max=-1)
        with pytest.raises(ValueError):
            BohbTuner(gamma=0.0)
        with pytest.raises(ValueError):
            BohbTuner(min_points=1)

    def test_requires_mf_objective(self):
        with pytest.raises(TypeError):
            HyperbandTuner().tune(
                make_sim_objective(10), np.random.default_rng(0)
            )

    @pytest.mark.parametrize("cls", [HyperbandTuner, BohbTuner])
    def test_spends_full_budget_and_reaches_full_fidelity(
        self, cls, mf_objective
    ):
        result = cls(s_max=2).tune_mf(mf_objective, np.random.default_rng(3))
        assert mf_objective.remaining < 1.0  # nearly all spent
        assert max(mf_objective.fidelities) == pytest.approx(1.0)
        assert np.isfinite(result.best_runtime_ms)
        # More launches than full-fidelity evaluations could afford.
        assert len(mf_objective.runtimes) > mf_objective.budget_units

    def test_bracket_promotes_best(self, mf_objective):
        tuner = HyperbandTuner(s_max=2)
        tuner._run_bracket(2, mf_objective, np.random.default_rng(4))
        fids = np.asarray(mf_objective.fidelities)
        # Successive halving: strictly fewer evaluations per rung.
        rung_sizes = [int((fids == f).sum()) for f in sorted(set(fids))]
        assert rung_sizes == sorted(rung_sizes, reverse=True)

    def test_bohb_uses_model_after_enough_points(self, mf_objective):
        tuner = BohbTuner(s_max=2, min_points=4)
        rng = np.random.default_rng(5)
        cfgs = mf_objective.space.sample(rng, 6, feasible_only=True)
        for cfg in cfgs:
            mf_objective.evaluate(cfg, fidelity=1.0)
        assert tuner._model_observations(mf_objective) is not None
        proposals = tuner._propose(3, mf_objective, rng)
        assert len(proposals) == 3
        for p in proposals:
            mf_objective.space.validate_config(p)
