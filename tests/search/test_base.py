"""Unit tests for the Objective budget contract and result types."""

import numpy as np
import pytest

from repro.search import BudgetExhausted, Objective, TuningResult
from repro.searchspace import IntegerParameter, SearchSpace


@pytest.fixture
def space():
    return SearchSpace([IntegerParameter("x", 0, 9)])


class TestObjective:
    def test_budget_enforced(self, space):
        obj = Objective(space, lambda c: float(c["x"]), budget=3)
        for x in range(3):
            obj.evaluate({"x": x})
        with pytest.raises(BudgetExhausted):
            obj.evaluate({"x": 5})
        assert obj.evaluations == 3

    def test_invalid_budget(self, space):
        with pytest.raises(ValueError):
            Objective(space, lambda c: 0.0, budget=0)

    def test_history_recorded_in_order(self, space):
        obj = Objective(space, lambda c: float(c["x"]), budget=5)
        for x in (4, 2, 8):
            obj.evaluate({"x": x})
        assert [c["x"] for c in obj.configs] == [4, 2, 8]
        assert obj.runtimes == [4.0, 2.0, 8.0]

    def test_remaining(self, space):
        obj = Objective(space, lambda c: 0.0, budget=4)
        obj.evaluate({"x": 0})
        assert obj.remaining == 3

    def test_best_observed_skips_failures(self, space):
        values = {0: float("inf"), 1: 5.0, 2: 3.0}
        obj = Objective(space, lambda c: values[c["x"]], budget=3)
        for x in range(3):
            obj.evaluate({"x": x})
        cfg, rt = obj.best_observed()
        assert cfg == {"x": 2}
        assert rt == 3.0

    def test_best_observed_all_failed(self, space):
        obj = Objective(space, lambda c: float("inf"), budget=2)
        obj.evaluate({"x": 0})
        obj.evaluate({"x": 1})
        cfg, rt = obj.best_observed()
        assert rt == float("inf")
        assert cfg == {"x": 0}

    def test_best_observed_empty(self, space):
        obj = Objective(space, lambda c: 0.0, budget=1)
        with pytest.raises(RuntimeError):
            obj.best_observed()

    def test_evaluate_copies_config(self, space):
        obj = Objective(space, lambda c: 0.0, budget=2)
        cfg = {"x": 3}
        obj.evaluate(cfg)
        cfg["x"] = 9
        assert obj.configs[0]["x"] == 3


class TestTuningResult:
    def test_history_length_mismatch(self):
        with pytest.raises(ValueError):
            TuningResult(
                best_config={"x": 0},
                best_runtime_ms=1.0,
                history_configs=[{"x": 0}],
                history_runtimes=[1.0, 2.0],
            )
