"""Shared fixtures for search-algorithm tests.

Tuners are exercised against two kinds of objectives:

* ``sim_objective`` — the real simulated GPU landscape (integration-ish),
* ``quadratic_objective`` — a cheap synthetic bowl with a known optimum,
  used to verify that model-based tuners actually *optimize*.
"""

import numpy as np
import pytest

from repro.gpu import TITAN_V, SimulatedDevice
from repro.kernels import get_kernel
from repro.search import Objective
from repro.searchspace import IntegerParameter, SearchSpace, paper_search_space


@pytest.fixture
def paper_space():
    return paper_search_space()


def make_sim_objective(budget: int, seed: int = 0, kernel: str = "harris"):
    k = get_kernel(kernel)
    device = SimulatedDevice(
        TITAN_V, k.profile(), rng=np.random.default_rng(seed)
    )
    return Objective(
        k.space(), lambda c: device.measure(c).runtime_ms, budget
    )


def make_quadratic_objective(budget: int):
    """A separable bowl over a 3-D integer space, minimum at (7, 3, 5)."""
    space = SearchSpace(
        [
            IntegerParameter("x", 0, 15),
            IntegerParameter("y", 0, 15),
            IntegerParameter("z", 0, 15),
        ]
    )
    target = {"x": 7, "y": 3, "z": 5}

    def measure(cfg):
        return 1.0 + sum((cfg[k] - target[k]) ** 2 for k in target)

    return Objective(space, measure, budget), target
