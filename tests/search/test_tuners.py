"""Behavioural tests shared by all five tuners, plus per-tuner checks."""

import numpy as np
import pytest

from repro.search import (
    PAPER_ALGORITHM_NAMES,
    BayesianGpTuner,
    BayesianTpeTuner,
    GeneticAlgorithmTuner,
    RandomForestTuner,
    RandomSearchTuner,
    make_tuner,
    paper_tuners,
)

from .conftest import make_quadratic_objective, make_sim_objective


class TestRegistry:
    def test_five_paper_algorithms(self):
        assert len(PAPER_ALGORITHM_NAMES) == 5
        tuners = paper_tuners()
        assert [t.name for t in tuners] == list(PAPER_ALGORITHM_NAMES)

    def test_labels_match_paper(self):
        labels = {t.name: t.label for t in paper_tuners()}
        assert labels == {
            "random_search": "RS",
            "random_forest": "RF",
            "genetic_algorithm": "GA",
            "bo_gp": "BO GP",
            "bo_tpe": "BO TPE",
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_tuner("gradient_descent")

    def test_kwargs_forwarded(self):
        t = make_tuner("bo_gp", init_fraction=0.2)
        assert t.init_fraction == 0.2

    def test_smbo_grouping_matches_paper(self):
        """Section V-C: RS/RF are non-SMBO (dataset) methods; GA and the
        BO variants measure live."""
        live = {t.name: t.requires_live_objective for t in paper_tuners()}
        assert live == {
            "random_search": False,
            "random_forest": False,
            "genetic_algorithm": True,
            "bo_gp": True,
            "bo_tpe": True,
        }


@pytest.mark.parametrize("name", PAPER_ALGORITHM_NAMES)
class TestBudgetContract:
    """Every algorithm must consume exactly its sample budget."""

    def test_exact_budget_on_simulator(self, name):
        budget = 30
        obj = make_sim_objective(budget, seed=1)
        result = make_tuner(name).tune(obj, np.random.default_rng(2))
        assert result.samples_used == budget
        assert len(result.history_runtimes) == budget
        assert np.isfinite(result.best_runtime_ms)

    def test_result_best_matches_history(self, name):
        obj = make_sim_objective(25, seed=3)
        result = make_tuner(name).tune(obj, np.random.default_rng(4))
        finite = [r for r in result.history_runtimes if np.isfinite(r)]
        assert result.best_runtime_ms == min(finite)


@pytest.mark.parametrize("name", PAPER_ALGORITHM_NAMES)
class TestReproducibility:
    def test_same_seed_same_result(self, name):
        r1 = make_tuner(name).tune(
            make_sim_objective(25, seed=7), np.random.default_rng(8)
        )
        r2 = make_tuner(name).tune(
            make_sim_objective(25, seed=7), np.random.default_rng(8)
        )
        assert r1.best_config == r2.best_config
        assert r1.history_runtimes == r2.history_runtimes


class TestOptimizers:
    """Model-driven tuners must actually optimize a learnable function."""

    @pytest.mark.parametrize("name", ["bo_gp", "bo_tpe", "genetic_algorithm"])
    def test_beats_random_on_quadratic(self, name):
        budget = 60
        smart_best = []
        random_best = []
        for seed in range(3):
            obj, _ = make_quadratic_objective(budget)
            r = make_tuner(name).tune(obj, np.random.default_rng(seed))
            smart_best.append(r.best_runtime_ms)
            obj2, _ = make_quadratic_objective(budget)
            r2 = RandomSearchTuner().tune(obj2, np.random.default_rng(seed))
            random_best.append(r2.best_runtime_ms)
        assert np.median(smart_best) <= np.median(random_best)

    def test_bo_gp_converges_near_optimum(self):
        obj, target = make_quadratic_objective(60)
        r = BayesianGpTuner().tune(obj, np.random.default_rng(0))
        assert r.best_runtime_ms <= 5.0  # within 2 steps of the bowl bottom


class TestRandomSearch:
    def test_picks_dataset_minimum(self, paper_space):
        rng = np.random.default_rng(0)
        configs = paper_space.sample(rng, 20, feasible_only=True)
        runtimes = np.arange(20, 0, -1).astype(float)
        r = RandomSearchTuner().tune_from_dataset(
            paper_space, configs, runtimes, None, rng
        )
        assert r.best_runtime_ms == 1.0
        assert r.best_config == configs[-1]
        assert r.samples_used == 20

    def test_all_failures_returns_something(self, paper_space):
        rng = np.random.default_rng(0)
        configs = paper_space.sample(rng, 5, feasible_only=True)
        runtimes = np.full(5, np.inf)
        r = RandomSearchTuner().tune_from_dataset(
            paper_space, configs, runtimes, None, rng
        )
        assert np.isinf(r.best_runtime_ms)

    def test_mismatched_lengths(self, paper_space):
        with pytest.raises(ValueError):
            RandomSearchTuner().tune_from_dataset(
                paper_space, [], np.ones(3), None, np.random.default_rng(0)
            )


class TestRandomForestTuner:
    def test_two_stage_protocol(self, paper_space):
        """Paper: train on S-10, measure top-10 predictions live."""
        rng = np.random.default_rng(0)
        tuner = RandomForestTuner(n_estimators=10, candidate_pool=256)
        obj = make_sim_objective(40, seed=5)
        result = tuner.tune(obj, rng)
        # 30 dataset samples + 10 live evaluations.
        assert result.samples_used == 40
        assert tuner.live_reserve() == 10

    def test_needs_live_objective(self, paper_space):
        rng = np.random.default_rng(0)
        configs = paper_space.sample(rng, 15, feasible_only=True)
        with pytest.raises(ValueError, match="live objective"):
            RandomForestTuner().tune_from_dataset(
                paper_space, configs, np.ones(15), None, rng
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestTuner(top_k=0)
        with pytest.raises(ValueError):
            RandomForestTuner(top_k=10, candidate_pool=5)


class TestGeneticAlgorithm:
    def test_respects_constraints_by_default(self):
        obj = make_sim_objective(40, seed=6)
        GeneticAlgorithmTuner().tune(obj, np.random.default_rng(7))
        assert all(obj.space.is_feasible(c) for c in obj.configs[:20])

    def test_caching_avoids_duplicate_budget(self):
        """Re-visiting a cached individual must not burn budget."""
        obj, _ = make_quadratic_objective(100)
        GeneticAlgorithmTuner(pop_size=4).tune(
            obj, np.random.default_rng(0)
        )
        # All 100 evaluations are distinct configurations.
        seen = {tuple(sorted(c.items())) for c in obj.configs}
        assert len(seen) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneticAlgorithmTuner(pop_size=1)
        with pytest.raises(ValueError):
            GeneticAlgorithmTuner(mutation_chance=0)


class TestBoGp:
    def test_init_fraction_matches_paper(self):
        assert BayesianGpTuner().init_fraction == 0.08

    def test_samples_unconstrained_space(self):
        """Section V-C: the SMBO methods had no constraint support, so
        some sampled configurations are infeasible."""
        infeasible_seen = 0
        for seed in range(5):
            obj = make_sim_objective(30, seed=seed)
            BayesianGpTuner().tune(obj, np.random.default_rng(seed + 100))
            infeasible_seen += sum(
                not obj.space.is_feasible(c) for c in obj.configs
            )
        assert infeasible_seen > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BayesianGpTuner(init_fraction=0.0)
        with pytest.raises(ValueError):
            BayesianGpTuner(n_candidates=0)
        with pytest.raises(ValueError):
            BayesianGpTuner(max_train_points=1)

    def test_training_subset_cap(self):
        tuner = BayesianGpTuner(max_train_points=10)
        X = np.arange(40, dtype=float).reshape(-1, 2)
        y = np.arange(20, dtype=float)
        Xs, ys = tuner._training_subset(X, y)
        assert ys.size <= 10
        assert 0.0 in ys      # best observation kept
        assert 19.0 in ys     # most recent kept


class TestBoTpe:
    def test_startup_is_hyperopt_default(self):
        assert BayesianTpeTuner().n_startup == 20

    def test_n_good_capping(self):
        t = BayesianTpeTuner(gamma=0.25)
        assert t._n_good(16) == 1
        assert t._n_good(100) == 3
        assert t._n_good(100000) == 25  # hyperopt's cap

    def test_validation(self):
        with pytest.raises(ValueError):
            BayesianTpeTuner(n_startup=1)
        with pytest.raises(ValueError):
            BayesianTpeTuner(gamma=1.0)
        with pytest.raises(ValueError):
            BayesianTpeTuner(n_ei_candidates=0)
