"""Socket-executor result batching: unitbatch dispatch, coalesced replies.

Launches real ``repro-worker`` subprocesses (like test_executors) plus a
hand-rolled legacy worker that never advertises ``result_batching``, to
prove both dialects interoperate on one coordinator.
"""

import os
import socket as _socket
import subprocess
import sys
import threading
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
from repro.obs import MetricsRegistry
from repro.parallel import ParallelMap
from repro.parallel.executors import SocketExecutor
from repro.parallel.executors.base import WorkUnit
from repro.parallel.executors.socket import parse_bind
from repro.parallel.executors.wire import recv_msg, send_msg
from repro.parallel.worker import _flush_entries, _serve_batch

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC_DIR = REPO_ROOT / "src"


def square(x):
    return x * x


def die_once(arg):
    """Kill this worker process the first time the marker is absent."""
    x, marker = arg
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("died")
        os._exit(17)
    return x + 100


def _worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


@contextmanager
def batching_workers(address, count, flush_interval=None, node_prefix="w"):
    """``count`` repro-worker subprocesses, optionally pinning the flush."""
    cmd_tail = []
    if flush_interval is not None:
        cmd_tail = ["--flush-interval", str(flush_interval)]
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.parallel.worker", "connect",
                address, "--node", f"{node_prefix}{i}", "--retry", "10",
                "--quiet", *cmd_tail,
            ],
            env=_worker_env(),
        )
        for i in range(count)
    ]
    try:
        yield procs
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def _unit(uid):
    return WorkUnit(
        uid=uid, entry=square, payload=(uid,), members=((uid, uid),)
    )


class TestPopBatch:
    """White-box: batch sizing under the fair-share cap."""

    def _executor_with_pending(self, pending, workers=1, batch_window=4):
        executor = SocketExecutor(batch_window=batch_window)
        executor.close()  # no live sockets needed for _pop_batch
        for name in range(workers):
            executor._workers[f"n{name}"] = None
        for i in range(pending):
            executor._pending.append(
                (1, _unit(i))
            )
        return executor

    def test_window_caps_batch(self):
        executor = self._executor_with_pending(10, workers=1)
        batch = executor._pop_batch(batching=True)
        assert [u.uid for _e, u in batch] == [0, 1, 2, 3]
        assert len(executor._pending) == 6

    def test_fair_share_caps_tail(self):
        # 3 units, 2 workers: ceil(3/2)=2 — one worker must not hoard 3.
        executor = self._executor_with_pending(3, workers=2)
        batch = executor._pop_batch(batching=True)
        assert len(batch) == 2

    def test_non_batching_worker_takes_one(self):
        executor = self._executor_with_pending(10, workers=1)
        assert len(executor._pop_batch(batching=False)) == 1

    def test_epoch_boundary_not_crossed(self):
        executor = self._executor_with_pending(2, workers=1)
        executor._pending.append((2, _unit(99)))
        batch = executor._pop_batch(batching=True)
        assert [e for e, _u in batch] == [1, 1]


class TestBatchedLoopback:
    def test_batched_results_match_and_coalesce(self):
        registry = MetricsRegistry()
        executor = SocketExecutor(batch_window=4)
        try:
            # Generous flush window: sub-millisecond units must share
            # frames rather than the test racing the default interval.
            with batching_workers(executor.address, 1, flush_interval=5.0):
                executor.wait_for_workers(1, timeout=30)
                pool = ParallelMap(
                    executor=executor, chunk_size=1, metrics=registry
                )
                outcomes = pool.run(square, list(range(12)))
        finally:
            executor.close()
        assert [o.result for o in outcomes] == [x * x for x in range(12)]
        flat = registry.flat_counters()
        assert flat.get("executor_results_coalesced_total", 0) >= 1
        # Coalescing means strictly fewer reply frames than units.
        assert flat.get("executor_result_frames_total", 0) < 12

    def test_flush_interval_zero_replies_per_unit(self):
        registry = MetricsRegistry()
        executor = SocketExecutor(batch_window=4)
        try:
            with batching_workers(executor.address, 1, flush_interval=0):
                executor.wait_for_workers(1, timeout=30)
                pool = ParallelMap(
                    executor=executor, chunk_size=1, metrics=registry
                )
                outcomes = pool.run(square, list(range(8)))
        finally:
            executor.close()
        assert [o.result for o in outcomes] == [x * x for x in range(8)]
        flat = registry.flat_counters()
        assert flat.get("executor_result_frames_total", 0) == 8
        assert flat.get("executor_results_coalesced_total", 0) == 0

    def test_batch_window_one_disables_batching(self):
        registry = MetricsRegistry()
        executor = SocketExecutor(batch_window=1)
        try:
            with batching_workers(executor.address, 1, flush_interval=5.0):
                executor.wait_for_workers(1, timeout=30)
                pool = ParallelMap(
                    executor=executor, chunk_size=1, metrics=registry
                )
                outcomes = pool.run(square, list(range(6)))
        finally:
            executor.close()
        assert all(o.ok for o in outcomes)
        assert registry.flat_counters().get(
            "executor_results_coalesced_total", 0
        ) == 0

    def test_worker_death_mid_batch_requeues_remainder(self, tmp_path):
        marker = str(tmp_path / "died-once-batch")
        registry = MetricsRegistry()
        executor = SocketExecutor(batch_window=4)
        try:
            with batching_workers(executor.address, 2):
                executor.wait_for_workers(2, timeout=30)
                pool = ParallelMap(
                    executor=executor, chunk_size=1, metrics=registry
                )
                outcomes = pool.run(
                    die_once, [(x, marker) for x in range(8)]
                )
        finally:
            executor.close()
        assert sorted(o.result for o in outcomes) == [
            x + 100 for x in range(8)
        ]
        flat = registry.flat_counters()
        assert flat.get("executor_units_requeued_total", 0) >= 1


class TestLegacyWorkerInterop:
    def test_non_batching_worker_gets_unit_frames(self):
        """A worker without the capability flag never sees unitbatch."""
        executor = SocketExecutor(batch_window=4)
        frames_seen = []

        def legacy_worker():
            from repro.gpu.simulator import SIMULATOR_VERSION

            host, port = parse_bind(executor.address)
            conn = _socket.create_connection((host, port))
            try:
                send_msg(
                    conn,
                    {
                        "kind": "hello",
                        "protocol": 1,
                        "node": "legacy",
                        "pid": 0,
                        "simulator_version": int(SIMULATOR_VERSION),
                        # no result_batching key: pre-batching dialect
                    },
                )
                welcome = recv_msg(conn)
                assert welcome["kind"] == "welcome"
                while True:
                    msg = recv_msg(conn)
                    if msg is None or msg.get("kind") == "shutdown":
                        return
                    frames_seen.append(msg.get("kind"))
                    if msg.get("kind") != "unit":
                        return  # would wedge the coordinator: bail out
                    send_msg(
                        conn,
                        {
                            "kind": "result",
                            "id": msg["id"],
                            "outcomes": msg["entry"](*msg["payload"]),
                        },
                    )
            finally:
                conn.close()

        thread = threading.Thread(target=legacy_worker, daemon=True)
        thread.start()
        try:
            executor.wait_for_workers(1, timeout=30)
            pool = ParallelMap(executor=executor, chunk_size=1)
            outcomes = pool.run(square, list(range(6)))
        finally:
            executor.close()
        thread.join(timeout=10)
        assert [o.result for o in outcomes] == [x * x for x in range(6)]
        assert frames_seen and set(frames_seen) == {"unit"}


class TestWorkerBatchHelpers:
    """Worker-side unitbatch execution over a socketpair (no subprocess)."""

    def _drain(self, sock, expect):
        entries = []
        while len(entries) < expect:
            frame = recv_msg(sock)
            assert frame["kind"] == "results"
            entries.extend(frame["entries"])
        return entries

    def test_serve_batch_streams_all_entries(self):
        a, b = _socket.socketpair()
        try:
            units = [
                {"id": i, "entry": square, "payload": (i,)}
                for i in range(5)
            ]
            _serve_batch(a, units, flush_interval=60.0)
            entries = self._drain(b, 5)
        finally:
            a.close()
            b.close()
        assert [e["id"] for e in entries] == list(range(5))
        assert [e["outcomes"] for e in entries] == [x * x for x in range(5)]

    def test_unit_error_becomes_error_entry(self):
        def boom(_x):
            raise RuntimeError("kapow")

        a, b = _socket.socketpair()
        try:
            _serve_batch(
                a,
                [{"id": 7, "entry": boom, "payload": (1,)}],
                flush_interval=0.0,
            )
            entries = self._drain(b, 1)
        finally:
            a.close()
            b.close()
        assert entries[0]["id"] == 7
        assert "kapow" in entries[0]["error"]
        assert "outcomes" not in entries[0]

    def test_unpicklable_entry_isolated_from_framemates(self):
        a, b = _socket.socketpair()
        try:
            buffered = [
                {"id": 0, "outcomes": 4},
                {"id": 1, "outcomes": [lambda: 1]},  # won't pickle
                {"id": 2, "outcomes": 9},
            ]
            _flush_entries(a, buffered)
            assert buffered == []  # flushed buffers are cleared
            frame = recv_msg(b)
        finally:
            a.close()
            b.close()
        assert frame["kind"] == "results"
        by_id = {e["id"]: e for e in frame["entries"]}
        assert by_id[0]["outcomes"] == 4
        assert by_id[2]["outcomes"] == 9
        assert "unpicklable result" in by_id[1]["error"]


class TestStudyOverBatchedSocket:
    def test_study_checkpoint_identical_across_batch_windows(
        self, tmp_path, monkeypatch
    ):
        """The batching transport must not leak into study bytes."""
        import repro.experiments.study as study_mod
        from repro.experiments import (
            ExperimentDesign,
            StudyConfig,
            run_study,
        )

        real_make = study_mod.make_executor

        def run(batch_window, name):
            def patched(kind, workers=None, bind=None, on_event=None):
                if kind == "socket":
                    return SocketExecutor(
                        bind=bind or "127.0.0.1:0",
                        on_event=on_event,
                        batch_window=batch_window,
                    )
                return real_make(
                    kind, workers=workers, bind=bind, on_event=on_event
                )

            monkeypatch.setattr(study_mod, "make_executor", patched)
            ckpt = tmp_path / f"{name}.jsonl"
            address_box = {}

            def capture(line):
                if "listening on" in line and "procs" not in address_box:
                    address = line.split("listening on ")[1].split(" ")[0]
                    procs = batching_workers(
                        address, 2, flush_interval=5.0,
                        node_prefix=f"{name}-",
                    )
                    address_box["procs"] = procs
                    procs.__enter__()

            config = StudyConfig(
                design=ExperimentDesign(
                    sample_sizes=(10,), experiments_at_largest=3
                ),
                algorithms=("random_search",),
                kernels=("add",),
                archs=("titan_v",),
                image_x=256,
                image_y=256,
                workers=2,
            )
            try:
                results = run_study(
                    config,
                    progress=capture,
                    checkpoint=str(ckpt),
                    landscape_cache=str(tmp_path / "cache"),
                    executor="socket",
                    min_workers=2,
                    result_store=False,
                )
            finally:
                if "procs" in address_box:
                    address_box["procs"].__exit__(None, None, None)
            return results, ckpt.read_bytes()

        plain, plain_bytes = run(1, "plain")
        batched, batched_bytes = run(4, "batched")
        assert batched_bytes == plain_bytes
        assert plain.results == batched.results
