"""Unit tests for the parallel map wrapper."""

import os

import pytest

from repro.parallel import (
    ParallelMap,
    TaskError,
    TaskOutcome,
    TransientError,
    default_worker_count,
)


def square(x):
    return x * x


def failing(x):
    if x == 3:
        raise RuntimeError("boom")
    return x


def failing_many(x):
    if x % 3 == 0:
        raise ValueError(f"bad task {x}")
    return x * 10


def flaky_until_marker(arg):
    """Fails with TransientError until a marker file exists (cross-process)."""
    x, marker = arg
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("seen")
        raise TransientError("first attempt flake")
    return x * 2


class TestSerial:
    def test_order_preserved(self):
        out = ParallelMap(workers=1).map(square, list(range(10)))
        assert out == [x * x for x in range(10)]

    def test_empty(self):
        assert ParallelMap(workers=1).map(square, []) == []

    def test_error_carries_task(self):
        with pytest.raises(TaskError) as err:
            ParallelMap(workers=1).map(failing, [1, 2, 3, 4])
        assert err.value.task == 3
        assert isinstance(err.value.cause, RuntimeError)


class TestParallel:
    def test_order_preserved_across_workers(self):
        out = ParallelMap(workers=2, chunk_size=3).map(
            square, list(range(20))
        )
        assert out == [x * x for x in range(20)]

    def test_single_task_runs_inline(self):
        assert ParallelMap(workers=4).map(square, [5]) == [25]

    def test_worker_error_propagates(self):
        with pytest.raises(TaskError):
            ParallelMap(workers=2, chunk_size=2).map(
                failing, list(range(6))
            )

    def test_workers_floor_at_one(self):
        pm = ParallelMap(workers=0)
        assert pm.workers == 1


class TestFailureAttribution:
    """Regression: a mid-chunk failure must name the task that raised,
    not the first task of the chunk it happened to be shipped in."""

    def test_serial_names_exact_task(self):
        with pytest.raises(TaskError) as err:
            ParallelMap(workers=1).map(failing, [1, 2, 3, 4])
        assert err.value.task == 3

    def test_parallel_names_exact_task_mid_chunk(self):
        # chunk_size=4 puts the failing task 3 mid-chunk ([0..3], [4..7]):
        # the old code blamed chunk[0] == 0.
        with pytest.raises(TaskError) as err:
            ParallelMap(workers=2, chunk_size=4).map(
                failing, list(range(8))
            )
        assert err.value.task == 3
        assert isinstance(err.value.cause, RuntimeError)
        assert "boom" in err.value.traceback

    def test_parallel_traceback_captured(self):
        with pytest.raises(TaskError) as err:
            ParallelMap(workers=2, chunk_size=2).map(
                failing, list(range(6))
            )
        assert "RuntimeError" in err.value.traceback


class TestCollectPolicy:
    def test_collect_runs_everything(self):
        pm = ParallelMap(workers=1, failure_policy="collect")
        outcomes = pm.run(failing_many, list(range(7)))
        assert len(outcomes) == 7
        failed = [o for o in outcomes if not o.ok]
        assert [o.task for o in failed] == [0, 3, 6]
        ok = [o for o in outcomes if o.ok]
        assert [o.result for o in ok] == [10, 20, 40, 50]

    def test_collect_parallel_order_and_attribution(self):
        pm = ParallelMap(workers=2, chunk_size=2, failure_policy="collect")
        outcomes = pm.run(failing_many, list(range(10)))
        assert [o.task for o in outcomes] == list(range(10))
        for o in outcomes:
            if o.task % 3 == 0:
                assert not o.ok
                assert o.error_type == "ValueError"
                assert f"bad task {o.task}" in str(o.error)
            else:
                assert o.ok and o.result == o.task * 10

    def test_on_outcome_sees_every_task(self):
        seen = []
        pm = ParallelMap(workers=1, failure_policy="collect")
        pm.run(failing_many, list(range(5)), on_outcome=seen.append)
        assert sorted(o.task for o in seen) == list(range(5))

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            ParallelMap(failure_policy="ignore")


class TestRetry:
    def test_serial_retry_transient(self, tmp_path):
        marker = str(tmp_path / "marker")
        pm = ParallelMap(workers=1, retries=2, backoff=0.001)
        outcomes = pm.run(flaky_until_marker, [(7, marker)])
        assert outcomes[0].ok
        assert outcomes[0].result == 14
        assert outcomes[0].attempts == 2

    def test_parallel_retry_transient(self, tmp_path):
        marker = str(tmp_path / "marker")
        pm = ParallelMap(
            workers=2, chunk_size=1, retries=2, backoff=0.001
        )
        outcomes = pm.run(
            flaky_until_marker, [(7, marker), (8, str(tmp_path / "m2"))]
        )
        assert all(o.ok for o in outcomes)
        assert [o.result for o in outcomes] == [14, 16]

    def test_non_retryable_fails_immediately(self):
        pm = ParallelMap(
            workers=1, retries=3, backoff=0.001, failure_policy="collect"
        )
        outcomes = pm.run(failing, [3])
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 1

    def test_no_retries_by_default(self, tmp_path):
        marker = str(tmp_path / "marker")
        pm = ParallelMap(workers=1, failure_policy="collect")
        outcomes = pm.run(flaky_until_marker, [(7, marker)])
        assert not outcomes[0].ok
        assert outcomes[0].error_type == "TransientError"


class TestDefaults:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_worker_count() == 3

    def test_env_invalid_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert default_worker_count() >= 1

    def test_no_env_uses_affinity_then_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        if hasattr(os, "sched_getaffinity"):
            expected = max(1, len(os.sched_getaffinity(0)))
        else:  # pragma: no cover - non-Linux
            expected = max(1, os.cpu_count() or 1)
        assert default_worker_count() == expected

    def test_no_env_respects_affinity_mask(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        if not hasattr(os, "sched_getaffinity"):  # pragma: no cover
            pytest.skip("no sched_getaffinity on this platform")
        # A CI job pinned to 2 of a 64-core host must not fork 64
        # workers, whatever os.cpu_count() claims.
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1})
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_worker_count() == 2
