"""Unit tests for the parallel map wrapper."""

import os

import pytest

from repro.parallel import ParallelMap, TaskError, default_worker_count


def square(x):
    return x * x


def failing(x):
    if x == 3:
        raise RuntimeError("boom")
    return x


class TestSerial:
    def test_order_preserved(self):
        out = ParallelMap(workers=1).map(square, list(range(10)))
        assert out == [x * x for x in range(10)]

    def test_empty(self):
        assert ParallelMap(workers=1).map(square, []) == []

    def test_error_carries_task(self):
        with pytest.raises(TaskError) as err:
            ParallelMap(workers=1).map(failing, [1, 2, 3, 4])
        assert err.value.task == 3
        assert isinstance(err.value.cause, RuntimeError)


class TestParallel:
    def test_order_preserved_across_workers(self):
        out = ParallelMap(workers=2, chunk_size=3).map(
            square, list(range(20))
        )
        assert out == [x * x for x in range(20)]

    def test_single_task_runs_inline(self):
        assert ParallelMap(workers=4).map(square, [5]) == [25]

    def test_worker_error_propagates(self):
        with pytest.raises(TaskError):
            ParallelMap(workers=2, chunk_size=2).map(
                failing, list(range(6))
            )

    def test_workers_floor_at_one(self):
        pm = ParallelMap(workers=0)
        assert pm.workers == 1


class TestDefaults:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_worker_count() == 3

    def test_env_invalid_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert default_worker_count() >= 1

    def test_no_env_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_worker_count() == max(1, os.cpu_count() or 1)
