"""Grouped (batched) pool dispatch: ordering, attribution, retries.

``ParallelMap.run_grouped`` ships whole replication groups to a batch
function; these tests pin the contract the batched study engine relies
on: outcomes stay in input order, a failure inside a batch is attributed
to exactly the task that failed (its batch-mates' results survive), only
the failed task is re-run on retry, and a batch function that raises
wholesale degrades to per-task execution without losing anything.
"""

import pytest

from repro.parallel import ParallelMap, TaskError, TaskFailure, TransientError
from repro.parallel.pool import DEFAULT_GROUP_BATCH, _run_batch

# Module-level functions so the workers>1 paths can pickle them.

CALLS = []


def square(task):
    return task * task


def square_batch(batch):
    return [t * t for t in batch]


def batch_with_failures(batch):
    out = []
    for t in batch:
        if t % 10 == 3:
            try:
                raise ValueError(f"task {t} is bad")
            except ValueError as exc:
                out.append(TaskFailure.from_exception(exc))
        else:
            out.append(t * t)
    return out


def exploding_batch(batch):
    raise RuntimeError("engine is broken")


def wrong_arity_batch(batch):
    return [t * t for t in batch][:-1]


def group_of(task):
    return task % 2


class TestRunGroupedSerial:
    def test_results_in_input_order(self):
        pool = ParallelMap(workers=1)
        tasks = [5, 2, 9, 4, 7, 0]
        outcomes = pool.run_grouped(square, square_batch, tasks, group_of)
        assert [o.index for o in outcomes] == list(range(len(tasks)))
        assert [o.result for o in outcomes] == [t * t for t in tasks]
        assert all(o.ok for o in outcomes)

    def test_empty_tasks(self):
        pool = ParallelMap(workers=1)
        assert pool.run_grouped(square, square_batch, [], group_of) == []

    def test_groups_split_into_batches(self):
        seen = []

        def recording_batch(batch):
            seen.append(list(batch))
            return [t * t for t in batch]

        pool = ParallelMap(workers=1, failure_policy="collect")
        tasks = list(range(10))
        pool.run_grouped(
            square, recording_batch, tasks, group_of, batch_size=3
        )
        # Two groups (even/odd), each of 5 tasks, split 3 + 2.
        assert sorted(len(b) for b in seen) == [2, 2, 3, 3]
        for batch in seen:
            keys = {group_of(t) for t in batch}
            assert len(keys) == 1  # no batch mixes groups

    def test_default_batch_size_bounds_batches(self):
        seen = []

        def recording_batch(batch):
            seen.append(len(batch))
            return [0] * len(batch)

        pool = ParallelMap(workers=1, failure_policy="collect")
        pool.run_grouped(
            square, recording_batch, list(range(150)), lambda t: 0
        )
        assert max(seen) == DEFAULT_GROUP_BATCH

    def test_failure_attributed_to_exact_task(self):
        pool = ParallelMap(workers=1, failure_policy="collect")
        tasks = [1, 3, 5, 13, 7]  # all one group; 3 and 13 fail
        outcomes = pool.run_grouped(
            square, batch_with_failures, tasks, lambda t: 0
        )
        failed = [o for o in outcomes if not o.ok]
        assert [o.task for o in failed] == [3, 13]
        for o in failed:
            assert o.error_type == "ValueError"
            assert f"task {o.task} is bad" in str(o.error)
            assert "ValueError" in o.traceback
        # Batch-mates of the failures keep their results.
        assert [o.result for o in outcomes if o.ok] == [1, 25, 49]

    def test_fail_fast_raises_naming_the_task(self):
        pool = ParallelMap(workers=1, failure_policy="fail_fast")
        with pytest.raises(TaskError) as err:
            pool.run_grouped(
                square, batch_with_failures, [1, 3, 5], lambda t: 0
            )
        assert err.value.task == 3

    def test_batch_fn_exception_falls_back_to_per_task(self):
        pool = ParallelMap(workers=1)
        outcomes = pool.run_grouped(
            square, exploding_batch, [2, 3, 4], lambda t: 0
        )
        assert [o.result for o in outcomes] == [4, 9, 16]

    def test_wrong_arity_falls_back_to_per_task(self):
        pool = ParallelMap(workers=1)
        outcomes = pool.run_grouped(
            square, wrong_arity_batch, [2, 3, 4], lambda t: 0
        )
        assert [o.result for o in outcomes] == [4, 9, 16]

    def test_on_outcome_sees_every_task(self):
        pool = ParallelMap(workers=1, failure_policy="collect")
        seen = []
        pool.run_grouped(
            square,
            batch_with_failures,
            [1, 3, 5],
            lambda t: 0,
            on_outcome=seen.append,
        )
        assert sorted(o.task for o in seen) == [1, 3, 5]


class TestRetryWithinBatch:
    def test_only_failed_task_retried(self):
        attempts = []

        def flaky(task):
            attempts.append(task)
            return task * task

        def transient_batch(batch):
            out = []
            for t in batch:
                if t == 3:
                    try:
                        raise TransientError("hiccup")
                    except TransientError as exc:
                        out.append(TaskFailure.from_exception(exc))
                else:
                    out.append(t * t)
            return out

        pool = ParallelMap(
            workers=1, failure_policy="collect", retries=2, backoff=0.0
        )
        outcomes = pool.run_grouped(
            flaky, transient_batch, [1, 3, 5], lambda t: 0
        )
        # Only the failed task went through the per-task function.
        assert attempts == [3]
        assert all(o.ok for o in outcomes)
        retried = next(o for o in outcomes if o.task == 3)
        assert retried.attempts == 2  # batch try + one individual retry
        assert retried.result == 9
        assert all(o.attempts == 1 for o in outcomes if o.task != 3)

    def test_nonretryable_failure_not_rerun(self):
        attempts = []

        def flaky(task):
            attempts.append(task)
            return task * task

        pool = ParallelMap(
            workers=1, failure_policy="collect", retries=3, backoff=0.0
        )
        outcomes = pool.run_grouped(
            flaky, batch_with_failures, [1, 3], lambda t: 0
        )
        assert attempts == []  # ValueError is not retryable
        bad = next(o for o in outcomes if o.task == 3)
        assert not bad.ok and bad.attempts == 1

    def test_retry_exhaustion_reports_last_error(self):
        def always_fails(task):
            raise TransientError(f"still down ({task})")

        def transient_batch(batch):
            out = []
            for t in batch:
                try:
                    raise TransientError("first failure")
                except TransientError as exc:
                    out.append(TaskFailure.from_exception(exc))
            return out

        pool = ParallelMap(
            workers=1, failure_policy="collect", retries=2, backoff=0.0
        )
        outcomes = pool.run_grouped(
            always_fails, transient_batch, [7], lambda t: 0
        )
        (outcome,) = outcomes
        assert not outcome.ok
        assert outcome.attempts == 3  # batch + 2 retries
        assert "still down (7)" in str(outcome.error)


class TestRunGroupedParallel:
    def test_matches_serial_results(self):
        tasks = list(range(23))
        serial = ParallelMap(workers=1).run_grouped(
            square, square_batch, tasks, group_of
        )
        parallel = ParallelMap(workers=2).run_grouped(
            square, square_batch, tasks, group_of
        )
        assert [o.result for o in serial] == [o.result for o in parallel]
        assert [o.index for o in parallel] == list(range(len(tasks)))

    def test_parallel_failure_attribution(self):
        tasks = [1, 3, 5, 13, 7, 2, 4]
        pool = ParallelMap(workers=2, failure_policy="collect")
        outcomes = pool.run_grouped(
            square, batch_with_failures, tasks, group_of
        )
        assert sorted(o.task for o in outcomes if not o.ok) == [3, 13]
        assert sorted(o.result for o in outcomes if o.ok) == sorted(
            t * t for t in tasks if t % 10 != 3
        )


class TestRunBatchUnit:
    def test_result_slots_map_one_to_one(self):
        outcomes = _run_batch(
            square, batch_with_failures, [10, 11, 12], [5, 3, 9],
            retries=0, backoff=0.0, backoff_cap=0.0, retryable=(),
        )
        assert [o.index for o in outcomes] == [10, 11, 12]
        assert [o.task for o in outcomes] == [5, 3, 9]
        assert [o.ok for o in outcomes] == [True, False, True]


class TestWholesaleFallbackAccounting:
    def test_fallback_counts_the_batch_attempt(self):
        # A wholesale batch explosion consumes one attempt per task; the
        # per-task fallback must report it (attempts >= 2), not restart
        # the count at 1.
        pool = ParallelMap(workers=1)
        outcomes = pool.run_grouped(
            square, exploding_batch, [2, 3, 4], lambda t: 0
        )
        assert [o.result for o in outcomes] == [4, 9, 16]
        assert [o.attempts for o in outcomes] == [2, 2, 2]

    def test_fallback_attempts_feed_retry_metrics(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        pool = ParallelMap(workers=1, metrics=registry)
        pool.run_grouped(square, exploding_batch, [2, 3, 4], lambda t: 0)
        # One extra (batch) attempt per task lands in the counter.
        assert registry.counter("task_retries_total").value == 3.0

    def test_wrong_arity_fallback_also_counted(self):
        pool = ParallelMap(workers=1)
        outcomes = pool.run_grouped(
            square, wrong_arity_batch, [2, 3, 4], lambda t: 0
        )
        assert [o.attempts for o in outcomes] == [2, 2, 2]

    def test_fallback_attempts_consume_retry_budget(self):
        # With retries=1, the wholesale batch attempt plus one fallback
        # attempt exhaust the budget: a transient per-task failure after
        # a broken batch is NOT retried again.
        calls = []

        def transient_once(task):
            calls.append(task)
            raise TransientError("still warming up")

        pool = ParallelMap(
            workers=1, failure_policy="collect", retries=1, backoff=0.0
        )
        (outcome,) = pool.run_grouped(
            transient_once, exploding_batch, [7], lambda t: 0
        )
        assert not outcome.ok
        assert outcome.attempts == 2  # batch + one per-task attempt
        assert calls == [7]
