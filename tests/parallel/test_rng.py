"""Unit tests for reproducible RNG stream derivation."""

import numpy as np

from repro.parallel import RngFactory, hash_key_to_entropy


class TestHashKey:
    def test_stable(self):
        assert hash_key_to_entropy("a/b/c") == hash_key_to_entropy("a/b/c")

    def test_distinct_keys_distinct_entropy(self):
        keys = [f"alg/{k}/{a}/{s}" for k in "xyz" for a in "pq"
                for s in (25, 50)]
        entropies = {hash_key_to_entropy(k) for k in keys}
        assert len(entropies) == len(keys)


class TestRngFactory:
    def test_same_key_same_stream(self):
        f = RngFactory(42)
        a = f.stream_for("bo_gp/harris/titan_v/100/7").random(5)
        b = f.stream_for("bo_gp/harris/titan_v/100/7").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_independent(self):
        f = RngFactory(42)
        a = f.stream_for("cell/1").random(1000)
        b = f.stream_for("cell/2").random(1000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1
        assert not np.array_equal(a, b)

    def test_root_seed_changes_streams(self):
        a = RngFactory(1).stream_for("k").random(5)
        b = RngFactory(2).stream_for("k").random(5)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        """Stream content does not depend on derivation order."""
        f1 = RngFactory(0)
        x_first = f1.stream_for("x").random(3)
        f1.stream_for("y")
        f2 = RngFactory(0)
        f2.stream_for("y")
        x_second = f2.stream_for("x").random(3)
        np.testing.assert_array_equal(x_first, x_second)

    def test_streams_for_batch(self):
        f = RngFactory(0)
        streams = f.streams_for(["a", "b"])
        assert len(streams) == 2
        assert not np.array_equal(streams[0].random(4), streams[1].random(4))

    def test_child_namespacing(self):
        f = RngFactory(0)
        direct = f.stream_for("b").random(4)
        namespaced = f.child("a").stream_for("b").random(4)
        flat = f.stream_for("a/b").random(4)
        assert not np.array_equal(direct, namespaced)
        assert not np.array_equal(namespaced, flat)

    def test_child_deterministic(self):
        a = RngFactory(0).child("ns").stream_for("k").random(4)
        b = RngFactory(0).child("ns").stream_for("k").random(4)
        np.testing.assert_array_equal(a, b)
