"""Executor backends: protocol units, cross-backend parity, socket loopback.

The socket tests launch real ``repro-worker`` subprocesses against a
loopback coordinator — the same path a multi-machine study exercises,
minus the network cable.
"""

import os
import socket as _socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
from repro.parallel import (
    EXECUTOR_NAMES,
    ParallelMap,
    TaskError,
    make_executor,
)
from repro.parallel.executors import (
    ProcessExecutor,
    SerialExecutor,
    SocketExecutor,
    ThreadExecutor,
)
from repro.parallel.executors.socket import parse_bind
from repro.parallel.executors.wire import (
    MAX_FRAME_BYTES,
    WireError,
    recv_msg,
    send_msg,
)

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SRC_DIR = REPO_ROOT / "src"


def square(x):
    return x * x


def failing(x):
    if x == 3:
        raise RuntimeError("boom")
    return x


def tenfold_batch(batch):
    return [x * 10 for x in batch]


def die_once(arg):
    """Kill this worker process the first time the marker is absent."""
    x, marker = arg
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("died")
        os._exit(17)
    return x + 100


def _worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


@contextmanager
def loopback_workers(address, count, node_prefix="w", extra_env=None):
    """Launch ``count`` repro-worker subprocesses against ``address``."""
    env = _worker_env()
    if extra_env:
        env.update(extra_env)
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.parallel.worker", "connect",
                address, "--node", f"{node_prefix}{i}", "--retry", "10",
                "--quiet",
            ],
            env=env,
        )
        for i in range(count)
    ]
    try:
        yield procs
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


@contextmanager
def socket_pool(workers=2, node_prefix="w", **pool_kwargs):
    """A ParallelMap over a loopback socket executor with live workers."""
    executor = SocketExecutor()
    try:
        with loopback_workers(
            executor.address, workers, node_prefix=node_prefix
        ):
            executor.wait_for_workers(workers, timeout=30)
            yield ParallelMap(executor=executor, **pool_kwargs)
    finally:
        executor.close()


class TestWire:
    def test_roundtrip(self):
        a, b = _socket.socketpair()
        try:
            send_msg(a, {"kind": "hello", "n": [1, 2, 3]})
            assert recv_msg(b) == {"kind": "hello", "n": [1, 2, 3]}
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = _socket.socketpair()
        a.close()
        try:
            assert recv_msg(b) is None
        finally:
            b.close()

    def test_bad_magic_raises(self):
        a, b = _socket.socketpair()
        try:
            a.sendall(b"NOPE" + b"\x00" * 8 + b"x")
            with pytest.raises(WireError):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = _socket.socketpair()
        try:
            a.sendall(b"REPX")  # header cut short
            a.close()
            with pytest.raises(WireError):
                recv_msg(b)
        finally:
            b.close()

    def test_oversize_frame_refused(self):
        a, b = _socket.socketpair()
        try:
            import struct

            a.sendall(struct.pack(">4sQ", b"REPX", MAX_FRAME_BYTES + 1))
            with pytest.raises(WireError):
                recv_msg(b)
        finally:
            a.close()
            b.close()


class TestFactory:
    def test_known_names(self):
        assert EXECUTOR_NAMES == ("serial", "process", "thread", "socket")
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("process", workers=2),
                          ProcessExecutor)
        assert isinstance(make_executor("thread", workers=2),
                          ThreadExecutor)
        sock = make_executor("socket")
        try:
            assert isinstance(sock, SocketExecutor)
        finally:
            sock.close()

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("carrier-pigeon")

    def test_parse_bind(self):
        assert parse_bind("0.0.0.0:7071") == ("0.0.0.0", 7071)
        with pytest.raises(ValueError):
            parse_bind("7071")


class TestCrossBackendParity:
    """One task list, four transports, identical outcomes."""

    TASKS = list(range(13))

    def _outcomes(self, pool):
        seen = []
        outcomes = pool.run(square, self.TASKS, on_outcome=seen.append)
        return outcomes, seen

    def _key(self, outcomes):
        return [(o.index, o.task, o.result, o.ok) for o in outcomes]

    def test_all_backends_agree(self):
        reference, ref_seen = self._outcomes(
            ParallelMap(executor=SerialExecutor())
        )
        assert [o.index for o in ref_seen] == list(range(len(self.TASKS)))
        for pool in (
            ParallelMap(workers=2, executor="process"),
            ParallelMap(workers=2, executor="thread"),
        ):
            outcomes, seen = self._outcomes(pool)
            assert self._key(outcomes) == self._key(reference)
            # hooks fire in input order on every backend
            assert [o.index for o in seen] == [
                o.index for o in ref_seen
            ]
        with socket_pool(workers=2) as pool:
            outcomes, seen = self._outcomes(pool)
            assert self._key(outcomes) == self._key(reference)
            assert [o.index for o in seen] == [o.index for o in ref_seen]

    def test_grouped_backends_agree(self):
        def run(pool):
            return pool.run_grouped(
                square, tenfold_batch, self.TASKS,
                group_key=lambda x: x % 3, batch_size=3,
            )

        reference = run(ParallelMap(executor=SerialExecutor()))
        for pool in (
            ParallelMap(workers=2, executor="process"),
            ParallelMap(workers=3, executor="thread"),
        ):
            assert self._key(run(pool)) == self._key(reference)

    def test_grouped_socket_agrees(self):
        reference = ParallelMap(executor=SerialExecutor()).run_grouped(
            square, tenfold_batch, self.TASKS,
            group_key=_mod3, batch_size=3,
        )
        with socket_pool(workers=2) as pool:
            outcomes = pool.run_grouped(
                square, tenfold_batch, self.TASKS,
                group_key=_mod3, batch_size=3,
            )
        assert self._key(outcomes) == self._key(reference)

    def test_fail_fast_names_exact_task_everywhere(self):
        for pool in (
            ParallelMap(executor="serial"),
            ParallelMap(workers=2, chunk_size=4, executor="process"),
            ParallelMap(workers=2, chunk_size=2, executor="thread"),
        ):
            with pytest.raises(TaskError) as err:
                pool.map(failing, list(range(8)))
            assert err.value.task == 3

    def test_explicit_instance_not_closed_between_dispatches(self):
        executor = ProcessExecutor(workers=2)
        pool = ParallelMap(executor=executor)
        assert pool.map(square, [1, 2, 3]) == [1, 4, 9]
        assert pool.map(square, [4, 5]) == [16, 25]


def _mod3(x):
    return x % 3


class TestSerialExecutorLaziness:
    def test_fail_fast_never_runs_later_tasks(self):
        ran = []

        def tracked(x):
            ran.append(x)
            if x == 2:
                raise RuntimeError("stop here")
            return x

        with pytest.raises(TaskError):
            ParallelMap(executor=SerialExecutor()).map(
                tracked, list(range(10))
            )
        assert ran == [0, 1, 2]


class TestSocketExecutor:
    def test_node_attribution(self):
        with socket_pool(workers=2, node_prefix="machine") as pool:
            outcomes = pool.run(square, list(range(8)))
        nodes = {o.node for o in outcomes}
        assert nodes  # every outcome is attributed
        assert nodes <= {"machine0", "machine1"}

    def test_wait_for_workers_timeout(self):
        executor = SocketExecutor()
        try:
            with pytest.raises(TimeoutError):
                executor.wait_for_workers(1, timeout=0.2)
        finally:
            executor.close()

    def test_elastic_join_mid_submit(self):
        """Workers attaching after dispatch still pick up the queue."""
        executor = SocketExecutor()
        results = []

        def run():
            pool = ParallelMap(executor=executor)
            results.extend(pool.map(square, list(range(6))))

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.3)  # dispatch is already blocked on an empty fleet
        try:
            with loopback_workers(executor.address, 1):
                thread.join(timeout=60)
                assert not thread.is_alive()
                assert results == [x * x for x in range(6)]
        finally:
            executor.close()

    def test_worker_death_requeues_unit(self, tmp_path):
        marker = str(tmp_path / "died-once")
        executor = SocketExecutor()
        try:
            with loopback_workers(executor.address, 2):
                executor.wait_for_workers(2, timeout=30)
                pool = ParallelMap(executor=executor, chunk_size=1)
                outcomes = pool.run(
                    die_once, [(x, marker) for x in range(4)]
                )
            assert [o.result for o in outcomes] == [100, 101, 102, 103]
        finally:
            executor.close()

    def test_worker_death_counted(self, tmp_path):
        marker = str(tmp_path / "died-once-counted")
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        executor = SocketExecutor()
        try:
            with loopback_workers(executor.address, 2):
                executor.wait_for_workers(2, timeout=30)
                pool = ParallelMap(
                    executor=executor, chunk_size=1, metrics=registry
                )
                outcomes = pool.run(
                    die_once, [(x, marker) for x in range(4)]
                )
            assert all(o.ok for o in outcomes)
            flat = registry.flat_counters()
            assert flat.get("executor_units_requeued_total", 0) >= 1
            assert flat.get("executor_workers_joined_total") == 2
        finally:
            executor.close()

    def test_simulator_version_mismatch_rejected(self):
        executor = SocketExecutor()
        try:
            host, port = parse_bind(executor.address)
            conn = _socket.create_connection((host, port))
            try:
                send_msg(
                    conn,
                    {
                        "kind": "hello",
                        "protocol": 1,
                        "node": "stale",
                        "pid": 0,
                        "simulator_version": -1,
                    },
                )
                reply = recv_msg(conn)
                assert reply["kind"] == "reject"
                assert "simulator version" in reply["reason"]
            finally:
                conn.close()
            assert executor.worker_count() == 0
        finally:
            executor.close()

    def test_worker_cli_rejected_handshake_exit_code(self):
        server = _socket.create_server(("127.0.0.1", 0))
        host, port = server.getsockname()[:2]

        def reject_first_client():
            conn, _ = server.accept()
            try:
                recv_msg(conn)  # the worker's hello
                send_msg(
                    conn, {"kind": "reject", "reason": "test says no"}
                )
            finally:
                conn.close()

        thread = threading.Thread(target=reject_first_client, daemon=True)
        thread.start()
        try:
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro.parallel.worker",
                    "connect", f"{host}:{port}", "--quiet",
                ],
                env=_worker_env(),
                timeout=30,
            )
        finally:
            server.close()
        assert proc.returncode == 1
