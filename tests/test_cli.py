"""Tests for the repro-study command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.sample_sizes == [25, 50, 100]
        assert args.experiments_at_largest == 5
        assert args.workers == 1
        assert not args.paper_scale

    def test_rejects_unknown_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--kernels", "fft"])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithms", "hill_climbing"])


class TestMain:
    def test_tiny_run_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        rc = main(
            [
                "--algorithms", "random_search", "genetic_algorithm",
                "--kernels", "add",
                "--archs", "titan_v",
                "--sample-sizes", "25",
                "--experiments-at-largest", "2",
                "--image-size", "512",
                "--save", str(out),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "Fig.2" in captured
        assert "Fig.4a" in captured

        doc = json.loads(out.read_text())
        assert len(doc["results"]) == 4  # 2 algorithms x 2 experiments
        assert doc["optima"]

    def test_svg_export(self, tmp_path, capsys):
        rc = main(
            [
                "--algorithms", "random_search", "genetic_algorithm",
                "--kernels", "add",
                "--archs", "titan_v",
                "--sample-sizes", "25",
                "--experiments-at-largest", "2",
                "--image-size", "512",
                "--no-figures",
                "--svg-dir", str(tmp_path / "figs"),
            ]
        )
        assert rc == 0
        svgs = list((tmp_path / "figs").glob("*.svg"))
        # fig2 panel + fig3 + fig4a panel + fig4b panel.
        assert len(svgs) == 4

    def test_no_figures_flag(self, capsys):
        rc = main(
            [
                "--algorithms", "random_search",
                "--kernels", "add",
                "--archs", "titan_v",
                "--sample-sizes", "25",
                "--experiments-at-largest", "1",
                "--image-size", "512",
                "--no-figures",
            ]
        )
        assert rc == 0
        assert "Fig.2" not in capsys.readouterr().out

    def test_checkpoint_resume(self, tmp_path, capsys):
        ckpt = tmp_path / "study.jsonl"
        argv = [
            "--algorithms", "random_search",
            "--kernels", "add",
            "--archs", "titan_v",
            "--sample-sizes", "25",
            "--experiments-at-largest", "2",
            "--image-size", "512",
            "--no-figures",
            "--checkpoint", str(ckpt),
        ]
        assert main(argv) == 0
        assert ckpt.exists()
        capsys.readouterr()
        assert main(argv) == 0  # resume: every cell already complete
        assert "2 cells already complete" in capsys.readouterr().err

    def test_collect_policy_reports_failed_cells(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAIL_CELLS", "random_search/add/titan_v/25/0"
        )
        rc = main(
            [
                "--algorithms", "random_search",
                "--kernels", "add",
                "--archs", "titan_v",
                "--sample-sizes", "25",
                "--experiments-at-largest", "2",
                "--image-size", "512",
                "--no-figures",
                "--failure-policy", "collect",
            ]
        )
        # A collect-policy run that finishes with failed cells exits
        # non-zero (3) so schedulers and CI notice partial studies.
        assert rc == 3
        err = capsys.readouterr().err
        assert "FAILED CELLS: 1 of 2 cells failed" in err
        assert "random_search/add/titan_v/25/0" in err
        assert "InjectedFailure" in err

    def test_status_goes_to_stderr_stdout_stays_pipeable(self, capsys):
        rc = main(
            [
                "--algorithms", "random_search",
                "--kernels", "add",
                "--archs", "titan_v",
                "--sample-sizes", "25",
                "--experiments-at-largest", "1",
                "--image-size", "512",
                "--no-figures",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out == ""  # nothing but figures ever hits stdout
        assert "design:" in captured.err

    def test_quiet_silences_status(self, capsys):
        rc = main(
            [
                "--algorithms", "random_search",
                "--kernels", "add",
                "--archs", "titan_v",
                "--sample-sizes", "25",
                "--experiments-at-largest", "1",
                "--image-size", "512",
                "--no-figures",
                "--quiet",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""


class TestObservabilityFlags:
    ARGS = [
        "--algorithms", "random_search", "genetic_algorithm",
        "--kernels", "add",
        "--archs", "titan_v",
        "--sample-sizes", "25",
        "--experiments-at-largest", "2",
        "--image-size", "512",
        "--no-figures",
    ]

    def test_trace_dir_writes_schema_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import validate_trace_path

        trace = tmp_path / "trace"
        rc = main(self.ARGS + ["--trace-dir", str(trace)])
        assert rc == 0
        files = list(trace.glob("*.jsonl"))
        assert files
        assert validate_trace_path(trace) == []
        events = [
            json.loads(line)
            for f in files
            for line in f.read_text().splitlines()
        ]
        evals = [e for e in events if e["kind"] == "evaluate"]
        # Every cell's trace holds exactly sample_size evaluate events.
        per_cell = {}
        for e in evals:
            per_cell[e["cell"]] = per_cell.get(e["cell"], 0) + 1
        assert per_cell  # 4 cells
        assert all(n == 25 for n in per_cell.values())

    def test_metrics_out_prometheus(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        rc = main(self.ARGS + ["--metrics-out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "# TYPE evaluations_total counter" in text
        # samples x experiments x algorithms = 25 * 2 * 2.
        assert "evaluations_total 100" in text

    def test_metrics_out_json(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        rc = main(self.ARGS + ["--metrics-out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        series = doc["evaluations_total"]["series"]
        assert series[0]["value"] == 100.0

    def test_convergence_prints_plots(self, capsys):
        rc = main(self.ARGS + ["--convergence"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Convergence add on titan_v" in out
        assert "evaluation" in out

    def test_convergence_svg_export(self, tmp_path, capsys):
        rc = main(
            self.ARGS
            + ["--convergence", "--svg-dir", str(tmp_path / "figs")]
        )
        assert rc == 0
        svgs = list((tmp_path / "figs").glob("convergence_*.svg"))
        assert len(svgs) == 1


class TestObservabilityV2Flags:
    ARGS = [
        "--algorithms", "random_search",
        "--kernels", "add",
        "--archs", "titan_v",
        "--sample-sizes", "25",
        "--experiments-at-largest", "2",
        "--image-size", "512",
        "--no-figures",
    ]

    def test_trace_level_spans_records_span_tree(self, tmp_path, capsys):
        from repro.obs import build_span_forest, validate_trace_path
        from repro.obs.read import iter_trace_events

        trace = tmp_path / "trace"
        rc = main(self.ARGS + [
            "--trace-dir", str(trace), "--trace-level", "spans",
        ])
        assert rc == 0
        assert validate_trace_path(trace) == []
        events = list(iter_trace_events([trace]))
        assert all(e["kind"] == "span" for e in events)
        roots = build_span_forest(events)
        assert [r.name for r in roots] == ["study"]
        names = {c.subject for c in roots[0].children}
        assert "experiments" in names

    def test_profile_report_on_stderr(self, capsys):
        rc = main(self.ARGS + ["--profile"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "profile:" in err
        assert "experiments" in err

    def test_profile_out_json(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        rc = main(self.ARGS + ["--profile-out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert "experiments" in doc["phases"]

    def test_profile_out_svg_from_spans(self, tmp_path, capsys):
        trace = tmp_path / "trace"
        out = tmp_path / "flame.svg"
        rc = main(self.ARGS + [
            "--trace-dir", str(trace), "--trace-level", "spans",
            "--profile-out", str(out),
        ])
        assert rc == 0
        assert out.read_text().startswith("<svg")

    def test_run_ledger_records_manifest(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        rc = main(self.ARGS + ["--run-ledger", str(ledger)])
        assert rc == 0
        manifests = list(ledger.glob("*.json"))
        assert len(manifests) == 1
        doc = json.loads(manifests[0].read_text())
        assert doc["config"]["kernels"] == ["add"]
        assert doc["argv"] == self.ARGS + ["--run-ledger", str(ledger)]
        assert f"run {doc['run_id']}" in capsys.readouterr().err

    def test_watch_without_sources_exits_2(self, tmp_path, capsys):
        rc = main(["--watch"])
        assert rc == 2
        assert "--watch needs" in capsys.readouterr().err

    def test_watch_completed_study(self, tmp_path, capsys):
        ck = tmp_path / "ck.jsonl"
        rc = main(self.ARGS + ["--checkpoint", str(ck)])
        assert rc == 0
        rc = main([
            "--watch", "--checkpoint", str(ck), "--watch-interval", "0",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "study complete" in err
        assert "cells 2/2" in err
