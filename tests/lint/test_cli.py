"""CLI contract: output formats and CI exit codes."""

import json

import pytest

from repro.lint.cli import main

SOURCE_BAD = (
    "import time\n"
    "def f():\n"
    "    return time.time()\n"
)
SOURCE_CLEAN = "X = 1\n"


def _tree(tmp_path, source):
    pkg = tmp_path / "src" / "repro" / "experiments"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(source)
    return tmp_path / "src" / "repro"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = _tree(tmp_path, SOURCE_CLEAN)
        code = main([str(root), "--relative-to", str(tmp_path)])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        root = _tree(tmp_path, SOURCE_BAD)
        code = main([str(root), "--relative-to", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP002" in out
        assert "src/repro/experiments/mod.py:3" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code = main([str(tmp_path / "nope")])
        assert code == 2

    def test_unknown_rule_exits_two(self, tmp_path):
        root = _tree(tmp_path, SOURCE_CLEAN)
        assert main([str(root), "--select", "REP999"]) == 2

    def test_unjustified_baseline_exits_two(self, tmp_path, capsys):
        root = _tree(tmp_path, SOURCE_BAD)
        baseline = tmp_path / "baseline.json"
        assert main(
            [str(root), "--write-baseline", str(baseline)]
        ) == 0
        # fresh baseline still carries placeholders -> config error
        code = main([str(root), "--baseline", str(baseline)])
        assert code == 2
        assert "justification" in capsys.readouterr().err

    def test_baseline_gates_to_zero_and_detects_new(self, tmp_path):
        root = _tree(tmp_path, SOURCE_BAD)
        baseline = tmp_path / "baseline.json"
        main([str(root), "--write-baseline", str(baseline),
              "--relative-to", str(tmp_path)])
        doc = json.loads(baseline.read_text())
        for entry in doc["entries"]:
            entry["justification"] = "known: tracked"
        baseline.write_text(json.dumps(doc))
        assert main(
            [str(root), "--baseline", str(baseline),
             "--relative-to", str(tmp_path)]
        ) == 0
        # a new violation appears -> exit 1 again
        mod = root / "experiments" / "mod.py"
        mod.write_text(SOURCE_BAD + "\ndef g():\n    return time.time()\n")
        assert main(
            [str(root), "--baseline", str(baseline),
             "--relative-to", str(tmp_path)]
        ) == 1


class TestOutput:
    def test_json_format(self, tmp_path, capsys):
        root = _tree(tmp_path, SOURCE_BAD)
        code = main(
            [str(root), "--format", "json",
             "--relative-to", str(tmp_path)]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"] == {"REP002": 1}
        assert doc["files_checked"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "REP002"
        assert finding["path"] == "src/repro/experiments/mod.py"

    def test_stale_baseline_warns_but_passes(self, tmp_path, capsys):
        root = _tree(tmp_path, SOURCE_CLEAN)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "REP002",
                "path": "src/repro/experiments/mod.py",
                "code": "return time.time()",
                "justification": "was grandfathered, now fixed",
            }],
        }))
        code = main(
            [str(root), "--baseline", str(baseline),
             "--relative-to", str(tmp_path)]
        )
        assert code == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 9):
            assert f"REP00{i}" in out
