"""Baseline round-trips, justification enforcement, drift tolerance."""

import json

import pytest

from repro.lint import (
    Baseline,
    BaselineError,
    Finding,
    load_baseline,
    write_baseline,
)
from repro.lint.baseline import (
    BaselineEntry,
    JUSTIFICATION_PLACEHOLDER,
)


def _finding(rule="REP002", path="src/repro/experiments/x.py",
             line=10, code="t = time.time()"):
    return Finding(
        path=path, line=line, col=5, rule=rule,
        message="msg", code=code, end_line=line,
    )


class TestRoundTrip:
    def test_write_then_load_filters_findings(self, tmp_path):
        findings = [_finding(), _finding(rule="REP003", code="x.write_text(y)")]
        path = tmp_path / "baseline.json"
        write_baseline(findings, path)
        # placeholder justifications must be filled in before loading
        doc = json.loads(path.read_text())
        for entry in doc["entries"]:
            entry["justification"] = "grandfathered: tracked in #42"
        path.write_text(json.dumps(doc))
        baseline = load_baseline(path)
        new, stale = baseline.filter(findings)
        assert new == []
        assert stale == []

    def test_freshly_written_baseline_fails_validation(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([_finding()], path)
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(path)

    def test_placeholder_is_rejected_even_if_set_manually(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "REP002", "path": "a.py", "code": "x",
                "justification": JUSTIFICATION_PLACEHOLDER,
            }],
        }))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_malformed_and_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(path)
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestMatching:
    def _baseline(self, *entries):
        return Baseline(entries=list(entries))

    def test_line_drift_does_not_resurrect(self):
        baseline = self._baseline(BaselineEntry(
            rule="REP002", path="src/repro/experiments/x.py",
            code="t = time.time()", justification="ok",
        ))
        moved = _finding(line=99)  # same content, different line
        new, stale = baseline.filter([moved])
        assert new == []
        assert stale == []

    def test_different_code_is_a_new_finding(self):
        baseline = self._baseline(BaselineEntry(
            rule="REP002", path="src/repro/experiments/x.py",
            code="t = time.time()", justification="ok",
        ))
        changed = _finding(code="u = time.time()")
        new, _ = baseline.filter([changed])
        assert new == [changed]

    def test_count_bounds_duplicate_absorption(self):
        baseline = self._baseline(BaselineEntry(
            rule="REP002", path="src/repro/experiments/x.py",
            code="t = time.time()", justification="ok", count=1,
        ))
        dup = [_finding(line=10), _finding(line=20)]
        new, stale = baseline.filter(dup)
        assert len(new) == 1  # only one absorbed
        assert stale == []

    def test_stale_entries_reported(self):
        baseline = self._baseline(
            BaselineEntry(
                rule="REP002", path="src/repro/experiments/x.py",
                code="t = time.time()", justification="ok",
            ),
            BaselineEntry(
                rule="REP003", path="gone.py",
                code="x.write_text(y)", justification="ok",
            ),
        )
        new, stale = baseline.filter([_finding()])
        assert new == []
        assert [e.path for e in stale] == ["gone.py"]
