"""Per-rule fixture tests: every rule has paired TP / FP snippets.

The TP fixture must produce at least one finding of its rule (with the
exact expected count, so rules do not silently over- or under-fire);
the FP fixture must produce none.
"""

import pytest

from .util import lint_fixture

# (fixture stem, rule id, expected TP finding count)
RULE_CASES = [
    ("rep001", "REP001", 4),
    ("rep002", "REP002", 3),
    ("rep003", "REP003", 3),
    ("rep004", "REP004", 6),
    ("rep005", "REP005", 5),
    ("rep006", "REP006", 5),
    ("rep007", "REP007", 4),
    ("rep008", "REP008", 3),
]


@pytest.mark.parametrize(
    "stem,rule_id,expected", RULE_CASES, ids=[c[1] for c in RULE_CASES]
)
class TestRuleFixtures:
    def test_true_positive(self, stem, rule_id, expected):
        findings = lint_fixture(f"{stem}_tp")
        of_rule = [f for f in findings if f.rule == rule_id]
        assert len(of_rule) == expected, [
            f"{f.rule} {f.location()} {f.message}" for f in findings
        ]
        # no *other* rule misfires on the TP fixture either
        assert all(f.rule == rule_id for f in findings)

    def test_false_positive(self, stem, rule_id, expected):
        findings = lint_fixture(f"{stem}_fp")
        assert findings == [], [
            f"{f.rule} {f.location()} {f.message}" for f in findings
        ]


class TestRuleScoping:
    def test_rep001_allowed_in_rng_module(self):
        # The blessed module may touch the RNG machinery directly.
        findings = lint_fixture(
            "rep001_tp", path="src/repro/parallel/rng.py"
        )
        assert findings == []

    def test_rep002_out_of_scope_dir(self):
        # Wall clocks outside deterministic dirs (e.g. reporting) pass.
        findings = lint_fixture(
            "rep002_tp", path="src/repro/reporting/fixture.py"
        )
        assert findings == []

    def test_rep007_out_of_scope_dir(self):
        findings = lint_fixture(
            "rep007_tp", path="src/repro/reporting/fixture.py"
        )
        assert findings == []

    def test_rep003_exempt_in_io_module(self):
        findings = lint_fixture("rep003_tp", path="src/repro/io.py")
        assert findings == []

    def test_findings_carry_code_and_location(self):
        findings = lint_fixture("rep001_tp")
        first = findings[0]
        assert first.path == "src/repro/search/fixture.py"
        assert first.line > 0 and first.col > 0
        assert "np.random.seed" in first.code
