# False positives REP002 must NOT flag: durations and injected clocks.
import time


def measure(clock=time.time):  # a *reference* is fine — injectable
    t0 = time.perf_counter()
    t1 = time.monotonic()
    return clock() - t0 + t1
