# True positives for REP004: non-canonical JSON feeding fingerprints.
import hashlib
import json


def digest(doc):
    # finding x2: hash-fed dumps without sort_keys and without separators
    return hashlib.sha256(json.dumps(doc).encode()).hexdigest()


def space_fingerprint(space):
    # finding: fingerprint-context dumps without sort_keys
    return json.dumps(space.descriptor())


def store_key(identity):
    # finding: result-store key construction without sort_keys
    return json.dumps(identity)


def make_entry_key(doc):
    # finding x2: hash-fed store entry key without sort_keys / separators
    return hashlib.sha256(json.dumps(doc).encode()).hexdigest()[:24]
