# True positives for REP007: worker-side mutation of module globals.
# Linted under the pretend path src/repro/experiments/fixture.py.
_CACHE = {}
_SEEN = []
_IDS = set()


def remember(key, value):
    _CACHE[key] = value  # finding: item assignment on module global
    _SEEN.append(key)  # finding: mutating method on module global
    _IDS.add(key)  # finding: mutating method on module global


def grow(key):
    _CACHE[key] += 1  # finding: augmented item assignment
