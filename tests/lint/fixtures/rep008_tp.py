# True positives for REP008: swallowed failure attribution.


def swallow_everything(task):
    try:
        return task.run()
    except:  # finding: bare except
        return None


def swallow_broad(task):
    try:
        return task.run()
    except Exception:  # finding: broad, unbound, no re-raise
        return None


def swallow_tuple(task):
    try:
        return task.run()
    except (ValueError, Exception):  # finding: tuple containing Exception
        return None
