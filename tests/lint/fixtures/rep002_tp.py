# True positives for REP002: wall-clock reads in a deterministic path.
# Linted under the pretend path src/repro/experiments/fixture.py.
import time
from datetime import datetime


def stamp():
    started = time.time()  # finding: wall clock
    nanos = time.time_ns()  # finding: wall clock
    now = datetime.now()  # finding: wall clock
    return started, nanos, now
