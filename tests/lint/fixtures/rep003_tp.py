# True positives for REP003: in-place writes of durable artifacts.
import json
from pathlib import Path


def save_results(path: Path, doc):
    path.write_text(json.dumps(doc))  # finding: torn-file window


def save_blob(path: Path, blob: bytes):
    with open(path, "wb") as fh:  # finding: truncates in place
        fh.write(blob)


def save_new(path: Path, text):
    with open(path, mode="x") as fh:  # finding: exclusive-create write
        fh.write(text)
