# True positives for REP005: unordered iteration reaching ordered output.
import json


def emit(names, extra, d):
    for name in set(names):  # finding: set iteration order
        print(name)
    rows = [n for n in set(names) | set(extra)]  # finding: set union
    listed = list({1, 2, 3})  # finding: set literal into list
    joined = ",".join(set(names))  # finding: join over a set
    payload = json.dumps(list(d.values()))  # finding: dict view serialized
    return rows, listed, joined, payload
