# False positives REP004 must NOT flag.
import hashlib
import json


def cache_key(space):
    # canonical: sorted keys + compact separators, directly hash-fed
    return hashlib.sha256(
        json.dumps(
            space, sort_keys=True, separators=(",", ":"), default=str
        ).encode()
    ).hexdigest()


def save_report(doc):
    # not hash-fed, not a fingerprint context: ordering is cosmetic here
    return json.dumps(doc, indent=2)


def store_key(identity):
    # canonical store key: sorted + compact, safe to hash
    return hashlib.sha256(
        json.dumps(identity, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def result_key_label(result):
    # sort_keys alone is canonical enough when the dump is not hash-fed
    return json.dumps(result, sort_keys=True)
