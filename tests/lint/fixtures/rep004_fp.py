# False positives REP004 must NOT flag.
import hashlib
import json


def cache_key(space):
    # canonical: sorted keys + compact separators, directly hash-fed
    return hashlib.sha256(
        json.dumps(
            space, sort_keys=True, separators=(",", ":"), default=str
        ).encode()
    ).hexdigest()


def save_report(doc):
    # not hash-fed, not a fingerprint context: ordering is cosmetic here
    return json.dumps(doc, indent=2)
