# False positives REP003 must NOT flag: the atomic idiom, reads, appends.
import json
import os
from pathlib import Path

from repro.io import atomic_write_text


def save_atomic_inline(path: Path, doc):
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(doc))  # temp file of the atomic idiom
    os.replace(tmp, path)


def save_via_helper(path: Path, doc):
    atomic_write_text(path, json.dumps(doc))


def read_and_append(path: Path):
    text = path.read_text()
    with open(path) as fh:  # read mode
        fh.read()
    with open(path, "a") as fh:  # append stream is a separate idiom
        fh.write(text)
