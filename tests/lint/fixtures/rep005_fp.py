# False positives REP005 must NOT flag: sorted wrappers, aggregates.
import json


def emit(names, extra, d):
    for name in sorted(set(names)):  # sorted restores determinism
        print(name)
    count = len(set(names))  # order-independent aggregate
    present = "x" in set(names)  # containment, no iteration order
    both = sorted(set(names) | set(extra))
    payload = json.dumps(sorted(d.values()))
    canon = json.dumps(d, sort_keys=True)
    return count, present, both, payload, canon
