# False positives REP007 must NOT flag.
_REGISTRY = {}
_REGISTRY["seeded"] = True  # import-time registration: pre-fork, fine

_LIMIT = 5  # immutable global


def local_state(items):
    acc = {}
    for item in items:
        acc[item] = item  # local dict, not a module global
    return acc


def read_only(key):
    return _REGISTRY.get(key, _LIMIT)
