# True positives for REP001: global-state RNG.
# Linted under the pretend path src/repro/search/fixture.py.
import random

import numpy as np


def draw():
    np.random.seed(42)  # finding: global numpy seed
    a = np.random.rand(3)  # finding: global numpy draw
    b = random.random()  # finding: stdlib global RNG
    random.shuffle([1, 2, 3])  # finding: stdlib global RNG
    return a, b
