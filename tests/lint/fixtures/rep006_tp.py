# True positives for REP006: unpicklable callables into pool dispatch.
from repro.parallel import ParallelMap


def run_lambda(pool, tasks):
    return pool.run(lambda t: t + 1, tasks)  # finding: lambda


def run_closure(pool, tasks, scale):
    def scaled(t):  # closes over scale — will not pickle
        return t * scale

    return pool.run(scaled, tasks)  # finding: nested function


def submit_lambda(executor, chunks, settings):
    return executor.submit_chunks(  # finding: lambda into executor dispatch
        lambda t: t + 1, chunks, settings
    )


class Runner:
    def go(self, pool, tasks):
        return pool.run_grouped(
            self.evaluate,  # finding: instance method
            self.evaluate_batch,  # finding: instance method
            tasks,
            group_key=str,
        )

    def evaluate(self, task):
        return task

    def evaluate_batch(self, batch):
        return list(batch)
