# False positives REP001 must NOT flag: seeded, local generator state.
import random

import numpy as np


def draw(rng):
    ss = np.random.SeedSequence(entropy=7)
    gen = np.random.default_rng(ss)
    local = random.Random(1234)  # seeded instance, not global state
    return gen.random(), rng.integers(10), local.random()
