# False positives REP008 must NOT flag: narrow, bound, or re-raising.


def narrow(task):
    try:
        return task.run()
    except ValueError:
        return None


def bound_and_attributed(task, outcomes):
    try:
        return task.run()
    except Exception as exc:
        outcomes.append((task, exc))
        return None


def broad_but_reraises(task):
    try:
        return task.run()
    except Exception:
        task.teardown()
        raise
