# False positives REP006 must NOT flag.
from repro.parallel import ParallelMap


def evaluate(task):  # module-level: pickles by qualified name
    return task + 1


def run_ok(pool, tasks):
    return pool.run(evaluate, tasks)


def submit_ok(executor, chunks, settings):
    # module-level fn through executor dispatch pickles fine
    return executor.submit_chunks(evaluate, chunks, settings)


def unrelated_receiver(app, tasks):
    # .run on a non-pool receiver is somebody else's API
    return app.run(lambda t: t, tasks)


def unrelated_submit(scheduler, chunks):
    # .submit_chunks on a non-executor receiver is somebody else's API
    return scheduler.submit_chunks(lambda t: t, chunks)
