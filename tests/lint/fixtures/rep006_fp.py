# False positives REP006 must NOT flag.
from repro.parallel import ParallelMap


def evaluate(task):  # module-level: pickles by qualified name
    return task + 1


def run_ok(pool, tasks):
    return pool.run(evaluate, tasks)


def unrelated_receiver(app, tasks):
    # .run on a non-pool receiver is somebody else's API
    return app.run(lambda t: t, tasks)
