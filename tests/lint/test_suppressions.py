"""Inline ``# repro: noqa[RULE] reason`` suppression semantics."""

from repro.lint import lint_source, parse_suppressions

PATH = "src/repro/experiments/x.py"


def _lint(source):
    return lint_source(source, PATH)


class TestParse:
    def test_parse_rules_and_reason(self):
        supps = parse_suppressions(
            "x = 1  # repro: noqa[REP002] boundary timestamp\n"
        )
        assert supps[1].rules == ("REP002",)
        assert supps[1].reason == "boundary timestamp"
        assert supps[1].justified

    def test_parse_multiple_rules(self):
        supps = parse_suppressions(
            "x = 1  # repro: noqa[REP002, REP003] both fine here\n"
        )
        assert supps[1].rules == ("REP002", "REP003")

    def test_unrelated_comments_ignored(self):
        assert parse_suppressions("x = 1  # noqa: BLE001\n") == {}
        assert parse_suppressions("x = 1  # plain comment\n") == {}


class TestApply:
    def test_justified_suppression_applies(self):
        findings = _lint(
            "import time\n"
            "def f():\n"
            "    return time.time()  "
            "# repro: noqa[REP002] single boundary\n"
        )
        assert findings == []

    def test_reasonless_suppression_is_inert_and_flagged(self):
        findings = _lint(
            "import time\n"
            "def f():\n"
            "    return time.time()  # repro: noqa[REP002]\n"
        )
        rules = sorted(f.rule for f in findings)
        # original finding stands AND the bare noqa is itself flagged
        assert rules == ["REP000", "REP002"]

    def test_wrong_rule_does_not_suppress(self):
        findings = _lint(
            "import time\n"
            "def f():\n"
            "    return time.time()  "
            "# repro: noqa[REP003] wrong rule entirely\n"
        )
        assert [f.rule for f in findings] == ["REP002"]

    def test_multiline_statement_comment_on_any_line(self):
        findings = _lint(
            "import json, hashlib\n"
            "def fingerprint(doc):\n"
            "    return hashlib.sha256(\n"
            "        json.dumps(doc)  "
            "# repro: noqa[REP004] fixture: frozen form\n"
            "        .encode()\n"
            "    ).hexdigest()\n"
        )
        # both REP004 findings (sort_keys + separators) share the node
        assert findings == []

    def test_suppression_only_covers_its_own_line_span(self):
        findings = _lint(
            "import time\n"
            "def f():\n"
            "    a = time.time()  # repro: noqa[REP002] covered\n"
            "    b = time.time()\n"
            "    return a + b\n"
        )
        assert len(findings) == 1
        assert findings[0].line == 4
