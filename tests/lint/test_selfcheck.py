"""Self-check: the committed baseline gates ``src/repro`` at zero.

This is the test CI's lint job mirrors — if it fails, either a new
violation slipped in (fix it or justify a suppression) or a violation
was fixed without pruning its baseline entry (remove the entry).
"""

from pathlib import Path

from repro.lint import lint_paths, load_baseline
from repro.lint.baseline import JUSTIFICATION_PLACEHOLDER
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_source_tree_is_clean_against_committed_baseline():
    baseline = load_baseline(BASELINE)
    result = lint_paths([SRC], relative_to=REPO_ROOT)
    assert result.errors == []
    new, stale = baseline.filter(result.findings)
    assert new == [], [
        f"{f.rule} {f.location()}: {f.message}" for f in new
    ]
    # the baseline must shrink as violations are fixed — no dead entries
    assert stale == [], [
        f"stale: {e.rule} {e.path}: {e.code}" for e in stale
    ]


def test_committed_baseline_entries_all_justified():
    baseline = load_baseline(BASELINE)  # load_baseline enforces this too
    for entry in baseline.entries:
        assert entry.justification
        assert entry.justification != JUSTIFICATION_PLACEHOLDER
        # a justification is a sentence, not a token
        assert len(entry.justification) > 20, entry


def test_cli_gate_exits_zero(capsys):
    code = main([
        str(SRC),
        "--baseline", str(BASELINE),
        "--relative-to", str(REPO_ROOT),
    ])
    assert code == 0, capsys.readouterr().out


def test_every_inline_suppression_has_a_reason():
    # REP000 (reason-less noqa) must never appear in the tree: the
    # self-check above would catch it as a new finding, but assert the
    # stronger property directly for a clearer failure message.
    result = lint_paths([SRC], relative_to=REPO_ROOT)
    bare = [f for f in result.findings if f.rule == "REP000"]
    assert bare == [], [f.location() for f in bare]
