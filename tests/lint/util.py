"""Shared helpers for the lint test suite."""

from pathlib import Path

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: Pretend in-repo path per fixture — rules scope themselves by
#: directory, so each snippet is linted as if it lived where the rule
#: applies (TP) and, for scope tests, where it does not.
FIXTURE_PATHS = {
    "rep001": "src/repro/search/fixture.py",
    "rep002": "src/repro/experiments/fixture.py",
    "rep003": "src/repro/obs/fixture.py",
    "rep004": "src/repro/gpu/fixture.py",
    "rep005": "src/repro/obs/fixture.py",
    "rep006": "src/repro/experiments/fixture.py",
    "rep007": "src/repro/experiments/fixture.py",
    "rep008": "src/repro/parallel/fixture.py",
}


def lint_fixture(name: str, path: str = None, rules=None):
    """Lint one fixture file under its pretend in-repo path."""
    source = (FIXTURES / f"{name}.py").read_text()
    pretend = path or FIXTURE_PATHS[name.split("_")[0]]
    return lint_source(source, pretend, rules=rules)
