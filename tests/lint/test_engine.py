"""Engine behavior: dispatch, ordering, error handling, path scoping."""

import textwrap

import pytest

from repro.lint import (
    ALL_RULES,
    get_rules,
    lint_paths,
    lint_source,
)
from repro.lint.registry import rule_catalog


class TestRegistry:
    def test_eight_rules_registered(self):
        ids = [cls.rule_id for cls in get_rules()]
        assert ids == sorted(ids)
        assert ids == [f"REP00{i}" for i in range(1, 9)]

    def test_every_rule_has_summary_and_interests(self):
        for cls in get_rules():
            assert cls.summary, cls.rule_id
            assert cls.interests, cls.rule_id

    def test_catalog_matches_registry(self):
        catalog = rule_catalog()
        assert set(catalog) == {cls.rule_id for cls in ALL_RULES}

    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            get_rules(["REP999"])

    def test_select_subset(self):
        only = get_rules(["REP002", "REP008"])
        assert [c.rule_id for c in only] == ["REP002", "REP008"]


class TestLintSource:
    def test_findings_sorted_by_location(self):
        source = textwrap.dedent(
            """
            import time

            def b():
                t = time.time()
                return time.time() + t
            """
        )
        findings = lint_source(
            source, "src/repro/experiments/x.py"
        )
        assert [f.rule for f in findings] == ["REP002", "REP002"]
        assert findings == sorted(findings)

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n", "src/repro/x.py")

    def test_rules_filter(self):
        source = "import time\nt = time.time()\n"
        all_findings = lint_source(source, "src/repro/gpu/x.py")
        none = lint_source(
            source, "src/repro/gpu/x.py", rules=get_rules(["REP003"])
        )
        assert [f.rule for f in all_findings] == ["REP002"]
        assert none == []

    def test_alias_resolution(self):
        # numpy imported under an alias still resolves
        source = (
            "import numpy.random as nprand\n"
            "def f():\n"
            "    return nprand.rand(3)\n"
        )
        findings = lint_source(source, "src/repro/search/x.py")
        assert [f.rule for f in findings] == ["REP001"]


class TestLintPaths:
    def test_directory_walk_and_relative_paths(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "experiments"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text(
            "import time\ndef f():\n    return time.time()\n"
        )
        (pkg / "b.py").write_text("X = 1\n")
        result = lint_paths(
            [tmp_path / "src"], relative_to=tmp_path
        )
        assert result.files_checked == 2
        assert [f.rule for f in result.findings] == ["REP002"]
        assert result.findings[0].path == "src/repro/experiments/a.py"

    def test_missing_path_is_error(self, tmp_path):
        result = lint_paths([tmp_path / "nope"])
        assert result.findings == []
        assert len(result.errors) == 1

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([bad], relative_to=tmp_path)
        assert result.files_checked == 0
        assert len(result.errors) == 1
        assert "syntax error" in result.errors[0].message

    def test_counts_by_rule(self, tmp_path):
        f = tmp_path / "x.py"
        f.write_text(
            "import time\n"
            "def f():\n"
            "    try:\n"
            "        return time.time()\n"
            "    except:\n"
            "        pass\n"
        )
        # path outside repro: REP002 out of scope, REP008 repo-wide
        result = lint_paths([f], relative_to=tmp_path)
        assert result.counts_by_rule() == {"REP008": 1}
