"""Unit tests for the kernel suite registry."""

import pytest

from repro.kernels import (
    KERNEL_TYPES,
    PAPER_IMAGE_SIZE,
    PAPER_KERNEL_NAMES,
    get_kernel,
    paper_suite,
)


class TestRegistry:
    def test_three_paper_kernels(self):
        assert PAPER_KERNEL_NAMES == ("add", "harris", "mandelbrot")
        assert set(PAPER_KERNEL_NAMES) <= set(KERNEL_TYPES)

    def test_get_kernel_default_size_is_papers(self):
        k = get_kernel("add")
        assert k.x_size == k.y_size == PAPER_IMAGE_SIZE == 8192

    def test_get_kernel_custom_size(self):
        k = get_kernel("harris", 128, 256)
        assert k.shape == (256, 128)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError, match="sobel"):
            get_kernel("sobel")

    def test_paper_suite_complete(self):
        suite = paper_suite()
        assert [k.name for k in suite] == list(PAPER_KERNEL_NAMES)
        assert all(k.x_size == PAPER_IMAGE_SIZE for k in suite)

    def test_profiles_named_after_kernels(self):
        for k in paper_suite():
            assert k.profile().name == k.name

    def test_profiles_span_roofline_regimes(self):
        """Suite design: one memory-bound, one intermediate, one
        compute-bound kernel (what makes the comparison interesting)."""
        by_name = {k.name: k.profile() for k in paper_suite()}
        ai = {n: p.arithmetic_intensity() for n, p in by_name.items()}
        assert ai["add"] < ai["harris"] < ai["mandelbrot"]
