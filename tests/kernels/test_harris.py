"""Unit tests for the Harris corner-detection benchmark.

The reference implementation is validated against an independent
brute-force (per-pixel loop) implementation on small images.
"""

import numpy as np
import pytest

from repro.kernels import HarrisKernel, box_filter_3x3, sobel_gradients
from repro.kernels.harris import HARRIS_K


def brute_force_harris(img: np.ndarray) -> np.ndarray:
    """Direct per-pixel Harris response with edge replication."""
    h, w = img.shape
    padded = np.pad(img, 1, mode="edge")
    ix = np.zeros_like(img)
    iy = np.zeros_like(img)
    sx = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float32)
    for r in range(h):
        for c in range(w):
            win = padded[r : r + 3, c : c + 3]
            ix[r, c] = (win * sx).sum()
            iy[r, c] = (win * sx.T).sum()
    sxx = np.zeros_like(img)
    syy = np.zeros_like(img)
    sxy = np.zeros_like(img)
    pxx = np.pad(ix * ix, 1, mode="edge")
    pyy = np.pad(iy * iy, 1, mode="edge")
    pxy = np.pad(ix * iy, 1, mode="edge")
    for r in range(h):
        for c in range(w):
            sxx[r, c] = pxx[r : r + 3, c : c + 3].sum()
            syy[r, c] = pyy[r : r + 3, c : c + 3].sum()
            sxy[r, c] = pxy[r : r + 3, c : c + 3].sum()
    det = sxx * syy - sxy * sxy
    trace = sxx + syy
    return det - HARRIS_K * trace * trace


class TestFilters:
    def test_sobel_on_linear_ramp(self):
        """A horizontal ramp has constant Ix = 8 (Sobel gain) and Iy = 0."""
        img = np.tile(np.arange(16, dtype=np.float32), (8, 1))
        ix, iy = sobel_gradients(img)
        np.testing.assert_allclose(ix[:, 1:-1], 8.0)
        np.testing.assert_allclose(iy, 0.0, atol=1e-5)

    def test_sobel_transpose_symmetry(self):
        rng = np.random.default_rng(0)
        img = rng.random((12, 12), dtype=np.float32)
        ix, iy = sobel_gradients(img)
        ix_t, iy_t = sobel_gradients(img.T.copy())
        np.testing.assert_allclose(iy, ix_t.T, atol=1e-4)
        np.testing.assert_allclose(ix, iy_t.T, atol=1e-4)

    def test_box_filter_constant(self):
        img = np.full((8, 8), 2.0, dtype=np.float32)
        np.testing.assert_allclose(box_filter_3x3(img), 18.0)

    def test_box_filter_interior_sum(self):
        rng = np.random.default_rng(1)
        img = rng.random((8, 8), dtype=np.float32)
        out = box_filter_3x3(img)
        expected = img[2:5, 2:5].sum()
        assert out[3, 3] == pytest.approx(expected, rel=1e-5)


class TestHarrisReference:
    def test_matches_brute_force(self):
        kernel = HarrisKernel(x_size=16, y_size=12)
        rng = np.random.default_rng(2)
        img = kernel.make_inputs(rng)["image"]
        fast = kernel.reference({"image": img})
        slow = brute_force_harris(img)
        np.testing.assert_allclose(fast, slow, rtol=1e-3, atol=1e-3)

    def test_constant_image_zero_response(self):
        kernel = HarrisKernel(x_size=16, y_size=16)
        img = np.full((16, 16), 3.0, dtype=np.float32)
        np.testing.assert_allclose(
            kernel.reference({"image": img}), 0.0, atol=1e-3
        )

    def test_corner_scores_high(self):
        """A bright quadrant corner must out-score edges and flat areas."""
        kernel = HarrisKernel(x_size=32, y_size=32)
        img = np.zeros((32, 32), dtype=np.float32)
        img[16:, 16:] = 1.0
        resp = kernel.reference({"image": img})
        corner = resp[16, 16]
        flat = resp[4, 4]
        edge = resp[4, 16]  # vertical edge far from the corner
        assert corner > 10 * abs(flat)
        assert corner > edge

    def test_rejects_3d_input(self):
        kernel = HarrisKernel(x_size=8, y_size=8)
        with pytest.raises(ValueError):
            kernel.reference({"image": np.zeros((8, 8, 3), np.float32)})


class TestProfile:
    def test_stencil_characterization(self):
        p = HarrisKernel(x_size=64, y_size=64).profile()
        assert p.stencil_radius == 2
        assert p.flops_per_element > 50
        assert p.divergence_cv == 0.0
        # Harris carries the suite's heaviest register pressure.
        add_p = __import__("repro.kernels", fromlist=["AddKernel"]).AddKernel(
            64, 64
        ).profile()
        assert p.base_registers > add_p.base_registers
