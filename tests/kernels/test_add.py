"""Unit tests for the Add benchmark."""

import numpy as np
import pytest

from repro.kernels import AddKernel, get_kernel


@pytest.fixture
def kernel():
    return AddKernel(x_size=128, y_size=64)


class TestSemantics:
    def test_reference_is_elementwise_sum(self, kernel):
        rng = np.random.default_rng(0)
        inputs = kernel.make_inputs(rng)
        out = kernel.reference(inputs)
        np.testing.assert_allclose(out, inputs["a"] + inputs["b"])

    def test_inputs_shape_and_dtype(self, kernel):
        inputs = kernel.make_inputs(np.random.default_rng(0))
        assert inputs["a"].shape == (64, 128)
        assert inputs["a"].dtype == np.float32
        assert set(inputs) == {"a", "b"}

    def test_shape_mismatch_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.reference(
                {"a": np.zeros((4, 4), np.float32),
                 "b": np.zeros((4, 5), np.float32)}
            )


class TestProfile:
    def test_memory_bound_characterization(self, kernel):
        p = kernel.profile()
        # 1 FLOP vs 12 bytes: deeply memory bound.
        assert p.arithmetic_intensity() < 0.5
        assert p.reads_per_element == 2.0
        assert p.writes_per_element == 1.0
        assert p.divergence_cv == 0.0
        assert p.stencil_radius == 0

    def test_profile_matches_problem_size(self, kernel):
        p = kernel.profile()
        assert (p.x_size, p.y_size) == (128, 64)

    def test_registry(self):
        k = get_kernel("add", 256, 256)
        assert isinstance(k, AddKernel)
        assert k.shape == (256, 256)

    def test_space_is_papers(self, kernel):
        assert kernel.space().size == 2_097_152
