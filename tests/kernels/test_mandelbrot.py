"""Unit tests for the Mandelbrot benchmark, including divergence
calibration checks against the actual escape-time field."""

import numpy as np
import pytest

from repro.kernels import MandelbrotKernel, iteration_statistics


@pytest.fixture(scope="module")
def kernel():
    return MandelbrotKernel(x_size=256, y_size=256, max_iter=256)


class TestSemantics:
    def test_known_interior_point_maxes_out(self):
        """c = 0 is in the set: its pixel reaches max_iter."""
        k = MandelbrotKernel(
            x_size=65, y_size=65, max_iter=64, view=(-1.0, 1.0, -1.0, 1.0)
        )
        counts = k.reference({})
        # Center pixel is c = 0 + 0j.
        assert counts[32, 32] == 64

    def test_known_exterior_point_escapes_fast(self):
        k = MandelbrotKernel(
            x_size=65, y_size=65, max_iter=64, view=(1.5, 2.5, 1.5, 2.5)
        )
        counts = k.reference({})
        assert counts.max() < 5  # far outside: immediate escape

    def test_counts_bounded(self, kernel):
        counts = kernel.reference({})
        assert counts.min() >= 0
        assert counts.max() <= kernel.max_iter

    def test_symmetry_about_real_axis(self):
        """The set is conjugate-symmetric; a symmetric viewport gives a
        symmetric image."""
        k = MandelbrotKernel(
            x_size=64, y_size=65, max_iter=64,
            view=(-2.0, 0.5, -1.25, 1.25),
        )
        counts = k.reference({})
        np.testing.assert_array_equal(counts, counts[::-1, :])

    def test_resolution_independence_of_structure(self, kernel):
        """Downsampled high-res rendering matches low-res rendering."""
        lo = kernel.iteration_counts(64, 64)
        hi = kernel.iteration_counts(256, 256)
        # Same viewport: coarse statistics agree.
        assert abs(float(lo.mean()) - float(hi.mean())) < 0.15 * hi.mean()

    def test_no_inputs_needed(self, kernel):
        assert kernel.make_inputs(np.random.default_rng(0)) == {}

    def test_invalid_max_iter(self):
        with pytest.raises(ValueError):
            MandelbrotKernel(x_size=8, y_size=8, max_iter=0)


class TestDivergenceCalibration:
    """The profile's divergence parameters must reflect the real field."""

    def test_iteration_statistics_sane(self, kernel):
        stats = iteration_statistics(kernel, resolution=128)
        assert stats.mean > 10
        assert stats.cv > 0.5  # strongly divergent workload
        assert stats.correlation_length > 0

    def test_profile_cv_matches_measured(self):
        k = MandelbrotKernel()  # paper-size viewport
        stats = iteration_statistics(k, resolution=256)
        profile_cv = k.profile().divergence_cv
        assert profile_cv == pytest.approx(stats.cv, rel=0.35)

    def test_profile_flops_match_measured_mean(self):
        from repro.kernels.mandelbrot import FLOPS_PER_ITERATION

        k = MandelbrotKernel()
        stats = iteration_statistics(k, resolution=256)
        expected = FLOPS_PER_ITERATION * stats.mean
        assert k.profile().flops_per_element == pytest.approx(
            expected, rel=0.35
        )


class TestProfile:
    def test_compute_bound_characterization(self, kernel):
        p = kernel.profile()
        assert p.reads_per_element == 0.0
        assert p.writes_per_element == 1.0
        assert p.flops_per_element > 100
        assert p.divergence_cv > 1.0
