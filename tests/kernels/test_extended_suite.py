"""Tests for the extension benchmark suite: convolution, transpose,
reduction, stencil3d."""

import numpy as np
import pytest

from repro.gpu import GTX_980, TITAN_V, simulate_runtimes
from repro.kernels import (
    EXTENDED_KERNEL_NAMES,
    ConvolutionKernel,
    ReductionKernel,
    Stencil3DKernel,
    TransposeKernel,
    extended_suite,
    get_kernel,
)


class TestRegistry:
    def test_extended_names(self):
        assert EXTENDED_KERNEL_NAMES == (
            "convolution", "transpose", "reduction", "stencil3d",
        )

    def test_extended_suite_builds(self):
        suite = extended_suite()
        assert [k.name for k in suite] == list(EXTENDED_KERNEL_NAMES)

    def test_get_kernel_finds_extensions(self):
        k = get_kernel("transpose", 256, 128)
        assert isinstance(k, TransposeKernel)
        assert k.shape == (128, 256)


class TestConvolution:
    def test_reference_matches_direct_computation(self):
        k = ConvolutionKernel(x_size=16, y_size=12, filter_size=3)
        img = k.make_inputs(np.random.default_rng(0))["image"]
        out = k.reference({"image": img})
        # Direct per-pixel check at an interior point.
        y, x = 5, 7
        window = img[y - 1 : y + 2, x - 1 : x + 2]
        assert out[y, x] == pytest.approx(
            float((window * k.weights).sum()), rel=1e-4
        )

    def test_identity_filter(self):
        k = ConvolutionKernel(x_size=8, y_size=8, filter_size=1)
        img = k.make_inputs(np.random.default_rng(1))["image"]
        out = k.reference({"image": img})
        np.testing.assert_allclose(out, img * k.weights[0, 0], rtol=1e-6)

    def test_even_filter_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionKernel(filter_size=4)

    def test_intensity_scales_with_filter_size(self):
        small = ConvolutionKernel(filter_size=3).profile()
        large = ConvolutionKernel(filter_size=9).profile()
        assert large.arithmetic_intensity() > 5 * small.arithmetic_intensity()

    def test_profile_radius(self):
        assert ConvolutionKernel(filter_size=7).profile().stencil_radius == 3


class TestTranspose:
    def test_reference_is_transpose(self):
        k = TransposeKernel(x_size=12, y_size=8)
        m = k.make_inputs(np.random.default_rng(0))["matrix"]
        out = k.reference({"matrix": m})
        assert out.shape == (12, 8)
        np.testing.assert_array_equal(out, m.T)

    def test_profile_flags_transposed_writes(self):
        assert TransposeKernel().profile().writes_transposed

    def test_transposed_writes_cost_more(self):
        """The simulator must charge transpose writes for the strided
        pattern: transpose is slower than the equivalent copy."""
        t_prof = TransposeKernel(4096, 4096).profile()
        copy_prof = t_prof.__class__(
            **{**t_prof.__dict__, "name": "copy", "writes_transposed": False}
        )
        cfg = np.array([[1, 1, 1, 8, 4, 1]])
        t_ms = simulate_runtimes(t_prof, TITAN_V, cfg).runtime_ms[0]
        c_ms = simulate_runtimes(copy_prof, TITAN_V, cfg).runtime_ms[0]
        assert t_ms > 1.2 * c_ms

    def test_older_arch_punished_harder(self):
        prof = TransposeKernel(4096, 4096).profile()
        cfg = np.array([[1, 1, 1, 8, 4, 1]])
        old = simulate_runtimes(prof, GTX_980, cfg)
        new = simulate_runtimes(prof, TITAN_V, cfg)
        # Ratio to each arch's bandwidth floor: Maxwell suffers more.
        old_floor = prof.elements * 8 / (GTX_980.dram_bandwidth_gbs * 1e6)
        new_floor = prof.elements * 8 / (TITAN_V.dram_bandwidth_gbs * 1e6)
        assert (old.runtime_ms[0] / old_floor) > (
            new.runtime_ms[0] / new_floor
        )


class TestReduction:
    def test_reference_sums(self):
        k = ReductionKernel(x_size=64, y_size=32)
        data = k.make_inputs(np.random.default_rng(0))["data"]
        out = k.reference({"data": data})
        assert out.shape == (1,)
        assert out[0] == pytest.approx(data.sum(dtype=np.float64), rel=1e-5)

    def test_shared_memory_limits_occupancy(self):
        """Per-thread accumulator slots must show up as a shared-memory
        occupancy pressure for large work-groups."""
        prof = ReductionKernel(4096, 4096).profile()
        assert prof.shared_bytes_per_thread > 0


class TestStencil3D:
    def test_reference_is_average_of_neighbours(self):
        k = Stencil3DKernel(x_size=8, y_size=8, z_size=8)
        g = k.make_inputs(np.random.default_rng(0))["grid"]
        out = k.reference({"grid": g})
        z, y, x = 4, 4, 4
        expected = (
            g[z, y, x]
            + g[z - 1, y, x] + g[z + 1, y, x]
            + g[z, y - 1, x] + g[z, y + 1, x]
            + g[z, y, x - 1] + g[z, y, x + 1]
        ) / 7.0
        assert out[z, y, x] == pytest.approx(expected, rel=1e-5)

    def test_constant_field_is_fixed_point(self):
        k = Stencil3DKernel(x_size=6, y_size=6, z_size=6)
        g = np.full((6, 6, 6), 3.0, dtype=np.float32)
        np.testing.assert_allclose(k.reference({"grid": g}), 3.0, rtol=1e-5)

    def test_z_parameters_matter(self):
        """On a deep grid, varying wg_z must change runtime materially —
        unlike on the paper's 2-D kernels where z is nearly dead."""
        prof = Stencil3DKernel(256, 256, 256).profile()
        base = np.array([[1, 1, 1, 8, 4, 1]])
        deep = np.array([[1, 1, 1, 8, 4, 4]])
        t_base = simulate_runtimes(prof, TITAN_V, base).runtime_ms[0]
        t_deep = simulate_runtimes(prof, TITAN_V, deep).runtime_ms[0]
        assert abs(t_deep - t_base) / t_base > 0.05

        # Contrast: on a 2-D kernel the same change is nearly free work-
        # wise (only occupancy dilution).
        prof2d = get_kernel("add", 4096, 4096).profile()
        b2 = simulate_runtimes(prof2d, TITAN_V, base).runtime_ms[0]
        d2 = simulate_runtimes(prof2d, TITAN_V, deep).runtime_ms[0]
        assert d2 > b2  # diluted occupancy costs something...
        # ...but the 3-D kernel's z-axis is a *useful* axis: some deeper
        # work-group improves on the flat one somewhere.
        zs = np.array([[1, 1, z, 8, 4, w] for z in (1, 2, 4) for w in (1, 2, 4)])
        t = simulate_runtimes(prof, TITAN_V, zs).runtime_ms
        assert t.min() < t_base * 1.01

    def test_profile_is_3d(self):
        prof = Stencil3DKernel(128, 128, 64).profile()
        assert prof.z_size == 64
        assert not prof.is_2d
        assert prof.elements == 128 * 128 * 64
