"""Unit tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.stats import (
    DEFAULT_BOOTSTRAP_SEED,
    bootstrap_ci,
    bootstrap_halfwidth,
)


class TestBootstrapCi:
    def test_interval_contains_estimate(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 2.0, 200)
        ci = bootstrap_ci(values, rng=np.random.default_rng(1))
        assert ci.low <= ci.estimate <= ci.high
        assert ci.estimate == pytest.approx(values.mean())

    def test_interval_narrows_with_more_data(self):
        rng = np.random.default_rng(0)
        small = bootstrap_ci(
            rng.normal(0, 1, 20), rng=np.random.default_rng(1)
        )
        large = bootstrap_ci(
            rng.normal(0, 1, 2000), rng=np.random.default_rng(1)
        )
        assert large.halfwidth < small.halfwidth

    def test_coverage_reasonable(self):
        """~95% of intervals should contain the true mean."""
        rng = np.random.default_rng(42)
        hits = 0
        n_trials = 200
        for _ in range(n_trials):
            sample = rng.normal(5.0, 1.0, 40)
            ci = bootstrap_ci(sample, n_resamples=400, rng=rng)
            hits += ci.low <= 5.0 <= ci.high
        assert 0.85 <= hits / n_trials <= 1.0

    def test_custom_statistic(self):
        values = np.array([1.0, 2.0, 3.0, 100.0])
        ci = bootstrap_ci(
            values, statistic=np.median, rng=np.random.default_rng(0)
        )
        assert ci.estimate == pytest.approx(2.5)

    def test_non_axis_statistic_fallback(self):
        values = np.arange(30.0)
        ci = bootstrap_ci(
            values,
            statistic=lambda v: float(np.sort(v)[-1]),
            n_resamples=100,
            rng=np.random.default_rng(0),
        )
        assert ci.estimate == 29.0

    def test_reproducible(self):
        values = np.random.default_rng(0).normal(0, 1, 50)
        a = bootstrap_ci(values, rng=np.random.default_rng(7))
        b = bootstrap_ci(values, rng=np.random.default_rng(7))
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0, np.inf]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(5), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(5), n_resamples=0)


class TestDeterministicDefault:
    def test_default_rng_is_deterministic(self):
        values = np.random.default_rng(0).normal(0, 1, 50)
        a = bootstrap_ci(values)
        b = bootstrap_ci(values)
        assert (a.low, a.high) == (b.low, b.high)

    def test_default_matches_explicit_seed(self):
        values = np.random.default_rng(0).normal(0, 1, 50)
        a = bootstrap_ci(values)
        b = bootstrap_ci(values, rng=DEFAULT_BOOTSTRAP_SEED)
        assert (a.low, a.high) == (b.low, b.high)

    def test_int_seed_accepted(self):
        values = np.arange(30.0)
        a = bootstrap_ci(values, rng=7)
        b = bootstrap_ci(values, rng=np.random.default_rng(7))
        assert (a.low, a.high) == (b.low, b.high)


class TestBootstrapHalfwidth:
    def test_matches_bootstrap_ci(self):
        values = np.random.default_rng(3).normal(5.0, 2.0, 60)
        ci = bootstrap_ci(values, rng=np.random.default_rng(11))
        hw = bootstrap_halfwidth(values, rng=np.random.default_rng(11))
        assert hw == pytest.approx(ci.halfwidth)

    def test_median_statistic(self):
        values = np.random.default_rng(4).normal(0.0, 1.0, 80)
        ci = bootstrap_ci(
            values, statistic=np.median, rng=np.random.default_rng(11)
        )
        hw = bootstrap_halfwidth(
            values, statistic=np.median, rng=np.random.default_rng(11)
        )
        assert hw == pytest.approx(ci.halfwidth)

    def test_deterministic_by_default(self):
        values = np.random.default_rng(5).normal(0, 1, 40)
        assert bootstrap_halfwidth(values) == bootstrap_halfwidth(values)

    def test_narrows_with_more_data(self):
        rng = np.random.default_rng(0)
        wide = bootstrap_halfwidth(rng.normal(0, 1, 20), rng=1)
        narrow = bootstrap_halfwidth(rng.normal(0, 1, 2000), rng=1)
        assert narrow < wide

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_halfwidth(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_halfwidth(np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            bootstrap_halfwidth(np.ones(5), confidence=0.0)
