"""Unit tests for pairwise comparisons and summaries."""

import numpy as np
import pytest

from repro.stats import compare_pair, describe, median_speedup


class TestMedianSpeedup:
    def test_faster_algorithm_above_one(self):
        fast = np.array([1.0, 1.0, 1.0])
        slow = np.array([2.0, 2.0, 2.0])
        assert median_speedup(fast, slow) == pytest.approx(2.0)
        assert median_speedup(slow, fast) == pytest.approx(0.5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            median_speedup(np.array([0.0]), np.array([1.0]))


class TestComparePair:
    def test_clear_winner_significant(self):
        rng = np.random.default_rng(0)
        a = rng.lognormal(0.0, 0.1, 100)
        b = rng.lognormal(0.5, 0.1, 100)
        cmp = compare_pair(a, b)
        assert cmp.median_speedup > 1.4
        assert cmp.cles > 0.9
        assert cmp.significant

    def test_identical_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.lognormal(0, 0.1, 100)
        b = rng.lognormal(0, 0.1, 100)
        cmp = compare_pair(a, b)
        assert not cmp.significant

    def test_paper_one_percent_median_criterion(self):
        """Significant p-value alone is not enough: the paper also
        requires the medians to differ by more than 1% (Section VII)."""
        base = np.concatenate([np.full(500, 1.000), np.full(500, 1.002)])
        shifted = base * 1.005  # big n -> tiny p, but only 0.5% delta
        cmp = compare_pair(base, shifted)
        assert cmp.p_value < 0.01
        assert not cmp.significant

    def test_cles_direction(self):
        fast = np.full(20, 1.0)
        slow = np.full(20, 2.0)
        assert compare_pair(fast, slow).cles == 1.0


class TestDescribe:
    def test_summary_fields(self):
        values = np.arange(1.0, 101.0)
        d = describe(values)
        assert d["n"] == 100
        assert d["median"] == pytest.approx(50.5)
        assert d["min"] == 1.0 and d["max"] == 100.0
        assert d["q25"] < d["median"] < d["q75"]

    def test_single_value(self):
        d = describe(np.array([5.0]))
        assert d["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            describe(np.array([]))
