"""Unit tests for the Mann-Whitney U test, validated against SciPy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.stats import PAPER_ALPHA, mann_whitney_u, rankdata_average


class TestRankData:
    def test_simple_ranks(self):
        np.testing.assert_array_equal(
            rankdata_average(np.array([10.0, 30.0, 20.0])), [1, 3, 2]
        )

    def test_ties_get_average_rank(self):
        np.testing.assert_array_equal(
            rankdata_average(np.array([1.0, 2.0, 2.0, 3.0])),
            [1, 2.5, 2.5, 4],
        )

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 10, 50).astype(float)
        np.testing.assert_allclose(
            rankdata_average(x), scipy_stats.rankdata(x)
        )


class TestMannWhitney:
    def test_identical_distributions_high_p(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 200)
        y = rng.normal(0, 1, 200)
        r = mann_whitney_u(x, y)
        assert r.p_value > PAPER_ALPHA
        assert not r.significant()

    def test_shifted_distributions_low_p(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 100)
        y = rng.normal(1.0, 1, 100)
        r = mann_whitney_u(x, y)
        assert r.p_value < 1e-6
        assert r.significant()

    def test_matches_scipy_two_sided(self):
        rng = np.random.default_rng(1)
        x = rng.lognormal(0, 1, 80)
        y = rng.lognormal(0.3, 1, 120)
        ours = mann_whitney_u(x, y)
        theirs = scipy_stats.mannwhitneyu(x, y, alternative="two-sided")
        assert ours.u_statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-2)

    def test_matches_scipy_one_sided(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, 60)
        y = rng.normal(0.4, 1, 60)
        for alt in ("less", "greater"):
            ours = mann_whitney_u(x, y, alternative=alt)
            theirs = scipy_stats.mannwhitneyu(x, y, alternative=alt)
            assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-2)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 5, 100).astype(float)
        y = rng.integers(1, 6, 100).astype(float)
        ours = mann_whitney_u(x, y)
        theirs = scipy_stats.mannwhitneyu(x, y, alternative="two-sided")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=5e-2)

    def test_all_identical_values(self):
        r = mann_whitney_u(np.ones(10), np.ones(15))
        assert r.p_value == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u(np.array([]), np.ones(3))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u(np.array([1.0, np.inf]), np.ones(3))

    def test_invalid_alternative(self):
        with pytest.raises(ValueError):
            mann_whitney_u(np.ones(3), np.ones(3), alternative="both")

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_p_value_bounds_property(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, 30)
        y = rng.normal(rng.uniform(-1, 1), 1, 40)
        r = mann_whitney_u(x, y)
        assert 0.0 <= r.p_value <= 1.0
        assert 0 <= r.u_statistic <= 30 * 40

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_symmetry_property(self, seed):
        """Two-sided p is symmetric in argument order."""
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, 25)
        y = rng.normal(0.5, 1, 35)
        assert mann_whitney_u(x, y).p_value == pytest.approx(
            mann_whitney_u(y, x).p_value, rel=1e-9
        )
