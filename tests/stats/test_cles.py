"""Unit tests for the Common Language Effect Size (Eq. 1 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import cles_greater, cles_smaller


def brute_force_cles(a, b):
    """Direct pairwise evaluation of Eq. 1."""
    wins = ties = 0
    for xa in a:
        for xb in b:
            if xa > xb:
                wins += 1
            elif xa == xb:
                ties += 1
    return (wins + 0.5 * ties) / (len(a) * len(b))


class TestClesGreater:
    def test_complete_dominance(self):
        a = np.array([10.0, 11.0, 12.0])
        b = np.array([1.0, 2.0, 3.0])
        assert cles_greater(a, b) == 1.0
        assert cles_greater(b, a) == 0.0

    def test_identical_distributions_half(self):
        a = np.array([1.0, 2.0, 3.0])
        assert cles_greater(a, a.copy()) == pytest.approx(0.5)

    def test_ties_count_half(self):
        a = np.array([1.0])
        b = np.array([1.0])
        assert cles_greater(a, b) == pytest.approx(0.5)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 6, 40).astype(float)
        b = rng.integers(0, 6, 30).astype(float)
        assert cles_greater(a, b) == pytest.approx(brute_force_cles(a, b))

    def test_complementarity(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 50)
        b = rng.normal(0.3, 1, 60)
        assert cles_greater(a, b) + cles_greater(b, a) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cles_greater(np.array([]), np.ones(2))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            cles_greater(np.array([np.nan]), np.ones(2))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force_property(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 4, rng.integers(1, 15)).astype(float)
        b = rng.integers(0, 4, rng.integers(1, 15)).astype(float)
        assert cles_greater(a, b) == pytest.approx(brute_force_cles(a, b))


class TestClesSmaller:
    def test_runtime_semantics(self):
        """Fig. 4b: the probability a (lower-is-better) runtime beats
        the baseline."""
        fast = np.array([1.0, 1.1, 0.9])
        slow = np.array([2.0, 2.1, 1.9])
        assert cles_smaller(fast, slow) == 1.0
        assert cles_smaller(slow, fast) == 0.0

    def test_mirror_of_greater(self):
        rng = np.random.default_rng(2)
        a = rng.lognormal(0, 0.5, 40)
        b = rng.lognormal(0.2, 0.5, 40)
        assert cles_smaller(a, b) == pytest.approx(cles_greater(b, a))
