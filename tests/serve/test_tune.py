"""The tune() facade: cold fills the store, warm answers in O(lookup)."""

import pytest

from repro.gpu.landscape import clear_landscape_memo
from repro.obs import MetricsRegistry
from repro.obs.metrics import global_registry
from repro.serve import TuneResult, tune
from repro.store import STORE_ENV, ResultStore


@pytest.fixture(autouse=True)
def isolated(monkeypatch):
    monkeypatch.delenv(STORE_ENV, raising=False)
    clear_landscape_memo()
    yield
    clear_landscape_memo()


def _tune(store, **kwargs):
    defaults = dict(
        kernel="add",
        arch="titan_v",
        tuner="random_search",
        budget=20,
        image_x=256,
        image_y=256,
        final_repeats=2,
        store=store,
    )
    defaults.update(kwargs)
    return tune(**defaults)


class TestTune:
    def test_cold_then_warm_identical(self, tmp_path):
        store = tmp_path / "store"
        cold = _tune(store)
        assert isinstance(cold, TuneResult)
        assert cold.cached is False
        assert cold.samples_used <= 20

        warm = _tune(store)
        assert warm.cached is True
        assert warm.fingerprint == cold.fingerprint
        assert warm.best_flat == cold.best_flat
        assert warm.best_config == cold.best_config
        assert warm.final_runtime_ms == cold.final_runtime_ms
        assert warm.observed_best_ms == cold.observed_best_ms
        assert warm.samples_used == cold.samples_used

    def test_warm_request_never_touches_simulator(self, tmp_path):
        store = tmp_path / "store"
        _tune(store)
        before = global_registry().flat_counters().get(
            "simulator_evals_total", 0.0
        )
        warm = _tune(store)
        after = global_registry().flat_counters().get(
            "simulator_evals_total", 0.0
        )
        assert warm.cached is True
        assert after == before

    def test_no_store_runs_cold_every_time(self, tmp_path):
        a = _tune(None)
        b = _tune(None)
        assert a.cached is False and b.cached is False
        assert a.best_flat == b.best_flat  # deterministic either way

    def test_env_var_names_the_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "env-store"))
        assert _tune(None).cached is False
        assert _tune(None).cached is True

    def test_identity_axes_are_distinct(self, tmp_path):
        store = tmp_path / "store"
        base = _tune(store)
        for change in (
            dict(budget=25),
            dict(experiment=1),
            dict(root_seed=7),
            dict(tuner="simulated_annealing"),
            dict(final_repeats=3),
        ):
            other = _tune(store, **change)
            assert other.cached is False, change
            assert other.fingerprint != base.fingerprint, change

    def test_distinct_experiments_are_independent_replicates(self, tmp_path):
        store = tmp_path / "store"
        r0 = _tune(store, experiment=0)
        r1 = _tune(store, experiment=1)
        # Different RNG streams: the searches sampled different configs
        # (identical incumbents can legitimately collide, the trajectory
        # fingerprint cannot).
        assert r0.fingerprint != r1.fingerprint

    def test_dataset_tuner_round_trips(self, tmp_path):
        store = tmp_path / "store"
        cold = _tune(
            store,
            tuner="random_forest",
            landscape_cache=tmp_path / "cache",
        )
        warm = _tune(
            store,
            tuner="random_forest",
            landscape_cache=tmp_path / "cache",
        )
        assert cold.cached is False
        assert warm.cached is True
        assert warm.best_flat == cold.best_flat
        assert warm.final_runtime_ms == cold.final_runtime_ms

    def test_store_instance_and_metrics(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path / "store", metrics=registry)
        _tune(store, metrics=registry)
        _tune(store, metrics=registry)
        flat = registry.flat_counters()
        assert flat["tune_requests_total"] == 2
        assert flat["tune_cache_hits_total"] == 1
        assert flat["result_store_hits_total"] >= 1
        assert flat["result_store_writes_total"] == 1

    def test_best_config_decodes_flat_index(self, tmp_path):
        result = _tune(tmp_path / "store")
        from repro.kernels import get_kernel

        space = get_kernel("add", 256, 256).space()
        assert result.best_config == space.flat_to_config(result.best_flat)
