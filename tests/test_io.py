"""repro.io atomic write helpers."""

import os

import pytest

from repro.io import atomic_write_bytes, atomic_write_text, atomic_write_with


class TestAtomicWriteText:
    def test_writes_content_and_returns_path(self, tmp_path):
        target = tmp_path / "out.json"
        result = atomic_write_text(target, "hello\n")
        assert result == target
        assert target.read_text() == "hello\n"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "x")
        assert os.listdir(tmp_path) == ["out.txt"]


class TestAtomicWriteBytes:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"
        assert os.listdir(tmp_path) == ["blob.bin"]


class TestAtomicWriteWith:
    def test_streaming_writer(self, tmp_path):
        target = tmp_path / "stream.bin"
        atomic_write_with(target, lambda fh: fh.write(b"abc"))
        assert target.read_bytes() == b"abc"

    def test_failing_writer_leaves_no_trace(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"intact")

        def boom(fh):
            fh.write(b"partial")
            raise RuntimeError("writer died")

        with pytest.raises(RuntimeError):
            atomic_write_with(target, boom)
        # destination untouched, temp file cleaned up
        assert target.read_bytes() == b"intact"
        assert os.listdir(tmp_path) == ["out.bin"]
