"""Phase profiler: accumulation, trace-derived profiles, rendering."""

import json

import pytest

from repro.obs.profile import (
    PhaseProfiler,
    main as profile_main,
    profile_from_events,
    render_profile,
)


class TestPhaseProfiler:
    def test_accumulates_in_entry_order(self):
        prof = PhaseProfiler()
        with prof.phase("landscapes"):
            pass
        with prof.phase("experiments"):
            pass
        with prof.phase("experiments"):
            pass
        snap = prof.snapshot()
        assert list(snap["phases"]) == ["landscapes", "experiments"]
        assert snap["phases"]["experiments"]["calls"] == 2
        assert snap["phases"]["landscapes"]["wall_s"] >= 0
        assert snap["rss_kb_peak"] > 0

    def test_snapshot_is_json_serializable(self):
        prof = PhaseProfiler()
        with prof.phase("optima"):
            pass
        json.dumps(prof.snapshot())

    def test_nested_phases_attribute_to_both(self):
        prof = PhaseProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
        snap = prof.snapshot()
        assert snap["phases"]["outer"]["calls"] == 1
        assert snap["phases"]["inner"]["calls"] == 1

    def test_telemetry_drives_profiler_phases(self):
        from repro.experiments.telemetry import StudyTelemetry

        prof = PhaseProfiler()
        telemetry = StudyTelemetry(profiler=prof)
        with telemetry.phase("dataset"):
            pass
        assert "dataset" in prof.snapshot()["phases"]
        assert "dataset" in telemetry.phase_seconds


SPAN_EVENTS = [
    {"kind": "span", "span_id": "s", "name": "study",
     "start": 0.0, "duration_s": 8.0, "cpu_s": 2.0, "pid": 1},
    {"kind": "span", "span_id": "p", "parent_id": "s", "name": "phase",
     "subject": "experiments", "start": 1.0, "duration_s": 6.0,
     "cpu_s": 1.0, "pid": 1},
    {"kind": "span", "span_id": "w", "parent_id": "p",
     "name": "worker-chunk", "start": 1.5, "duration_s": 5.0,
     "cpu_s": 4.8, "pid": 2, "rss_kb": 2048},
]


class TestProfileFromEvents:
    def test_merges_phases_and_workers(self):
        profile = profile_from_events(SPAN_EVENTS)
        assert profile["total_s"] == 8.0
        assert profile["phases"]["experiments"]["wall_s"] == 6.0
        assert profile["workers"][2]["busy_s"] == 5.0
        assert profile["rss_kb_peak"] == 2048

    def test_render_mentions_every_phase_and_worker(self):
        text = render_profile(profile_from_events(SPAN_EVENTS))
        assert "experiments" in text
        assert "pid 2" in text
        assert "peak RSS: 2048 KiB" in text
        # CPU-heavy worker bar is mostly '#', waiting shows as '-'.
        worker_row = next(l for l in text.splitlines() if "pid 2" in l)
        assert "#" in worker_row

    def test_render_handles_empty_profile(self):
        text = render_profile({"phases": {}, "workers": {}})
        assert text.startswith("profile:")


class TestProfileCli:
    def _write_trace(self, tmp_path):
        trace = tmp_path / "trace"
        trace.mkdir()
        with (trace / "trace-1.jsonl").open("w") as fh:
            for doc in SPAN_EVENTS:
                fh.write(json.dumps(doc) + "\n")
        return trace

    def test_json_output(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        assert profile_main([str(trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["phases"]["experiments"]["wall_s"] == 6.0

    def test_svg_output(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path)
        svg = tmp_path / "flame.svg"
        assert profile_main([str(trace), "--svg", str(svg)]) == 0
        text = svg.read_text()
        assert text.startswith("<svg")
        assert "study" in text

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert profile_main([str(tmp_path / "nope")]) == 2
