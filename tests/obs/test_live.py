"""Live study monitoring: read-only tailing, progress, ETA, watch loop."""

import json

import pytest

from repro.obs.live import StudyWatch, watch_study


def _write_lines(path, docs, tear=None):
    with path.open("a") as fh:
        for doc in docs:
            fh.write(json.dumps(doc) + "\n")
        if tear is not None:
            fh.write(tear)  # no newline: a writer mid-line


def _header():
    return {"kind": "header", "version": 1, "root_seed": 1}


def _plan(total):
    return {"kind": "plan", "data": {"total_cells": total}}


def _result(key):
    return {"kind": "result", "cell_key": key, "data": {}}


class TestStudyWatch:
    def test_requires_some_input(self):
        with pytest.raises(ValueError):
            StudyWatch()

    def test_progress_from_checkpoint(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        _write_lines(ck, [_header(), _plan(4), _result("a/0")])
        watch = StudyWatch(checkpoint=ck)
        status = watch.poll()
        assert status["total"] == 4
        assert status["completed"] == 1
        assert status["last_cell"] == "a/0"

        _write_lines(ck, [
            _result("a/1"),
            {"kind": "failure", "cell_key": "a/2", "error": "boom"},
            {"kind": "stopped", "group_key": "g",
             "data": {"reason": "ci_target"}},
        ])
        status = watch.poll()
        assert status["completed"] == 2
        assert status["failed"] == 1
        assert status["stopped_groups"] == 1
        line = watch.render(status)
        assert "cells 3/4" in line
        assert "1 failed" in line
        assert "ci_target" in line

    def test_torn_final_line_left_for_next_poll(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        _write_lines(ck, [_header(), _plan(2)], tear='{"kind": "resu')
        watch = StudyWatch(checkpoint=ck)
        assert watch.poll()["completed"] == 0
        # The writer finishes the line; the next poll picks it up whole.
        with ck.open("a") as fh:
            fh.write('lt", "cell_key": "a/0", "data": {}}\n')
        assert watch.poll()["completed"] == 1

    def test_never_writes_study_files(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        _write_lines(ck, [_header(), _plan(1)])
        before = (ck.stat().st_mtime_ns, ck.read_bytes())
        StudyWatch(checkpoint=ck).poll()
        assert (ck.stat().st_mtime_ns, ck.read_bytes()) == before

    def test_trace_event_counts(self, tmp_path):
        trace = tmp_path / "trace"
        trace.mkdir()
        _write_lines(trace / "trace-1.jsonl", [
            {"kind": "evaluate", "cell": "a/0", "index": 0},
            {"kind": "span", "span_id": "s", "name": "study",
             "start": 0.0, "duration_s": 1.0, "pid": 1},
        ])
        watch = StudyWatch(trace_dir=trace)
        status = watch.poll()
        assert status["event_kinds"] == {"evaluate": 1, "span": 1}
        assert "1 evaluations, 1 spans" in watch.render(status)

    def test_throughput_and_eta_from_sliding_window(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        _write_lines(ck, [_header(), _plan(10)])
        now = [0.0]
        watch = StudyWatch(checkpoint=ck, clock=lambda: now[0])
        watch.poll()
        # One completion per second for 4 seconds.
        for i in range(4):
            now[0] = float(i + 1)
            _write_lines(ck, [_result(f"a/{i}")])
            status = watch.poll()
        assert status["completed"] == 4
        assert status["throughput_per_s"] == pytest.approx(1.0, abs=0.01)
        # 6 cells remain at ~1/s.
        assert status["eta_seconds"] == pytest.approx(6.0, abs=0.5)
        assert "ETA" in watch.render(status)


class TestWatchStudy:
    def test_exits_when_study_completes(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        _write_lines(ck, [_header(), _plan(2)])
        lines = []
        polls = [0]

        def fake_sleep(_):
            # The study finishes while the watcher sleeps.
            polls[0] += 1
            if polls[0] == 1:
                _write_lines(ck, [_result("a/0"), _result("a/1")])

        rc = watch_study(
            checkpoint=ck, emit=lines.append, sleep=fake_sleep,
            clock=lambda: 0.0,
        )
        assert rc == 0
        assert lines[-1] == "study complete"
        assert any("cells 2/2" in l for l in lines)

    def test_max_polls_bounds_the_loop(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        _write_lines(ck, [_header(), _plan(5)])
        lines = []
        rc = watch_study(
            checkpoint=ck, max_polls=3, emit=lines.append,
            sleep=lambda _: None, clock=lambda: 0.0,
        )
        assert rc == 0
        assert lines  # progress was reported even though never done

    def test_waits_for_missing_files(self, tmp_path):
        ck = tmp_path / "not-yet.jsonl"
        lines = []
        polls = [0]

        def fake_sleep(_):
            polls[0] += 1
            if polls[0] == 2:
                _write_lines(ck, [_header(), _plan(1), _result("a/0")])

        rc = watch_study(
            checkpoint=ck, emit=lines.append, sleep=fake_sleep,
            clock=lambda: 0.0,
        )
        assert rc == 0
        assert "waiting" in lines[0]
        assert lines[-1] == "study complete"

    def test_repeated_identical_lines_deduplicated(self, tmp_path):
        ck = tmp_path / "ck.jsonl"
        _write_lines(ck, [_header(), _plan(5), _result("a/0")])
        lines = []
        watch_study(
            checkpoint=ck, max_polls=4, emit=lines.append,
            sleep=lambda _: None, clock=lambda: 0.0,
        )
        progress = [l for l in lines if l.startswith("cells")]
        assert len(progress) == 1  # nothing changed between polls
