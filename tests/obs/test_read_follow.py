"""Incremental trace tailing: JsonlTail, TraceTail, and --follow."""

import io
import json

from repro.obs.read import JsonlTail, TraceTail, _follow, main as read_main


def _append(path, docs, tear=None):
    with path.open("a") as fh:
        for doc in docs:
            fh.write(json.dumps(doc) + "\n")
        if tear is not None:
            fh.write(tear)


class TestJsonlTail:
    def test_incremental_polls_return_only_new_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _append(path, [{"i": 1}, {"i": 2}])
        tail = JsonlTail(path)
        assert [d["i"] for d in tail.poll()] == [1, 2]
        assert tail.poll() == []
        _append(path, [{"i": 3}])
        assert [d["i"] for d in tail.poll()] == [3]

    def test_missing_file_polls_empty(self, tmp_path):
        tail = JsonlTail(tmp_path / "nope.jsonl")
        assert tail.poll() == []

    def test_torn_final_line_unconsumed_until_complete(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _append(path, [{"i": 1}], tear='{"i": 2')
        tail = JsonlTail(path)
        assert [d["i"] for d in tail.poll()] == [1]
        # Nothing new yet: the torn line is someone's in-flight write.
        assert tail.poll() == []
        with path.open("a") as fh:
            fh.write(', "done": true}\n')
        assert [d["i"] for d in tail.poll()] == [2]

    def test_truncated_file_restarts_from_zero(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _append(path, [{"i": 1}, {"i": 2}, {"i": 3}])
        tail = JsonlTail(path)
        tail.poll()
        # Checkpoint-style trim: the file shrinks under the tail.
        path.write_text(json.dumps({"i": 9}) + "\n")
        assert [d["i"] for d in tail.poll()] == [9]

    def test_unparseable_interior_line_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"i": 1}\ngarbage\n{"i": 2}\n')
        tail = JsonlTail(path)
        assert [d["i"] for d in tail.poll()] == [1, 2]


class TestTraceTail:
    def test_picks_up_files_created_after_start(self, tmp_path):
        trace = tmp_path / "trace"
        trace.mkdir()
        tail = TraceTail(trace)
        assert tail.poll() == []
        _append(trace / "trace-1.jsonl", [{"i": 1}])
        assert [d["i"] for d in tail.poll()] == [1]
        # A new worker starts writing its own file mid-study.
        _append(trace / "trace-2.jsonl", [{"i": 2}])
        _append(trace / "trace-1.jsonl", [{"i": 3}])
        assert sorted(d["i"] for d in tail.poll()) == [2, 3]

    def test_single_file_target(self, tmp_path):
        path = tmp_path / "one.jsonl"
        _append(path, [{"i": 1}])
        tail = TraceTail(path)
        assert [d["i"] for d in tail.poll()] == [1]


class TestFollow:
    def test_follow_prints_new_events_per_poll(self, tmp_path):
        trace = tmp_path / "trace"
        trace.mkdir()
        path = trace / "trace-1.jsonl"
        _append(path, [{"kind": "evaluate", "cell": "a/0", "index": 0}])
        out = io.StringIO()
        polls = [0]

        def fake_sleep(_):
            polls[0] += 1
            _append(path, [{"kind": "evaluate", "cell": "a/0",
                            "index": polls[0]}])

        rc = _follow([trace], interval=0.0, max_polls=3, out=out,
                     sleep=fake_sleep)
        assert rc == 0
        lines = [json.loads(l) for l in out.getvalue().splitlines()]
        assert [d["index"] for d in lines] == [0, 1, 2]

    def test_cli_follow_allows_missing_paths(self, tmp_path, capsys):
        missing = tmp_path / "later"
        # Without --follow a missing path is an error...
        assert read_main([str(missing)]) == 2
        # ...with --follow it is something to wait for.
        assert read_main(
            [str(missing), "--follow", "--interval", "0",
             "--max-polls", "1"]
        ) == 0
