"""Content-addressed run ledger: manifests, listing, and regression diff.

The acceptance bar for the ledger: an injected >=20% phase-time
regression between two otherwise-identical manifests must be detected
by ``repro-runs diff`` with a non-zero exit code.
"""

import copy
import json

import pytest

from repro.experiments import ExperimentDesign, StudyConfig, run_study
from repro.experiments.optimum import clear_optimum_cache
from repro.gpu.landscape import clear_landscape_memo
from repro.obs.runs import (
    build_manifest,
    diff_runs,
    list_runs,
    load_run,
    main as runs_main,
    manifest_id,
    record_run,
)


@pytest.fixture(autouse=True)
def isolated():
    clear_landscape_memo()
    clear_optimum_cache()
    yield
    clear_landscape_memo()
    clear_optimum_cache()


def _study(tmp_path, **kwargs):
    config = StudyConfig(
        design=ExperimentDesign(sample_sizes=(25,), experiments_at_largest=2),
        algorithms=("random_search",),
        kernels=("add",),
        archs=("titan_v",),
        image_x=512,
        image_y=512,
        workers=1,
    )
    results = run_study(
        config, landscape_cache=tmp_path / "cache", **kwargs
    )
    return config, results


class TestManifest:
    def test_build_manifest_contents(self, tmp_path):
        config, results = _study(tmp_path)
        manifest = build_manifest(
            config, results, argv=["--kernels", "add"], created=1000.0
        )
        assert manifest["manifest_version"] == 1
        assert manifest["argv"] == ["--kernels", "add"]
        assert manifest["config"]["kernels"] == ["add"]
        assert manifest["config"]["root_seed"] == config.root_seed
        assert "add/titan_v" in manifest["fingerprints"]
        assert manifest["environment"]["python"]
        assert manifest["headline"]["experiments_total"] == 2
        assert manifest["headline"]["experiments_failed"] == 0
        assert isinstance(
            manifest["headline"]["phase_seconds"], dict
        )
        assert manifest["run_id"] == manifest_id(manifest)

    def test_run_id_is_content_addressed(self, tmp_path):
        config, results = _study(tmp_path)
        a = build_manifest(config, results, created=1000.0)
        b = build_manifest(config, results, created=1000.0)
        assert a["run_id"] == b["run_id"]
        c = build_manifest(config, results, created=2000.0)
        assert c["run_id"] != a["run_id"]

    def test_run_study_records_into_ledger(self, tmp_path):
        ledger = tmp_path / "ledger"
        config, results = _study(tmp_path, run_ledger=ledger)
        run_id = results.metadata["run_id"]
        runs = list_runs(ledger)
        assert [r["run_id"] for r in runs] == [run_id]
        assert (ledger / f"{run_id}.json").exists()
        assert results.metadata["run_manifest"].endswith(f"{run_id}.json")


class TestLedgerIO:
    def _manifest(self, run_id, created=1000.0, wall=10.0):
        return {
            "manifest_version": 1,
            "created": created,
            "config": {"root_seed": 1},
            "fingerprints": {"add/titan_v": "abc"},
            "headline": {
                "wall_seconds": wall,
                "experiments_failed": 0,
                "phase_seconds": {"experiments": wall * 0.8},
            },
            "run_id": run_id,
        }

    def test_record_list_roundtrip_skips_torn_files(self, tmp_path):
        ledger = tmp_path / "ledger"
        record_run(ledger, self._manifest("aaa111", created=2.0))
        record_run(ledger, self._manifest("bbb222", created=1.0))
        (ledger / "torn.json").write_text('{"run_id": "cc')
        runs = list_runs(ledger)
        # Oldest first, torn file skipped.
        assert [r["run_id"] for r in runs] == ["bbb222", "aaa111"]

    def test_load_run_by_prefix_path_and_errors(self, tmp_path):
        ledger = tmp_path / "ledger"
        path = record_run(ledger, self._manifest("abc123"))
        record_run(ledger, self._manifest("abd456"))
        assert load_run(ledger, "abc")["run_id"] == "abc123"
        assert load_run(ledger, str(path))["run_id"] == "abc123"
        with pytest.raises(KeyError, match="ambiguous"):
            load_run(ledger, "ab")
        with pytest.raises(KeyError, match="no run"):
            load_run(ledger, "zzz")


class TestDiff:
    def _baseline(self):
        return {
            "config": {"root_seed": 1, "kernels": ["add"]},
            "fingerprints": {"add/titan_v": "abc"},
            "headline": {
                "wall_seconds": 100.0,
                "experiments_failed": 0,
                "replications_executed": 50,
                "phase_seconds": {"experiments": 80.0, "optima": 10.0},
            },
            "run_id": "old000000000",
        }

    def test_identical_runs_have_no_regressions(self):
        base = self._baseline()
        report = diff_runs(base, copy.deepcopy(base))
        assert report["comparable"]
        assert report["regressions"] == []
        assert report["changes"] == []

    def test_injected_20pct_phase_regression_detected(self, tmp_path):
        """Acceptance: a >=20% slower phase must flag and exit non-zero."""
        base = self._baseline()
        slow = copy.deepcopy(base)
        slow["run_id"] = "new000000000"
        slow["headline"]["phase_seconds"]["experiments"] = 80.0 * 1.25
        slow["headline"]["wall_seconds"] = 120.0

        report = diff_runs(base, slow)
        assert any("phase experiments" in r for r in report["regressions"])

        ledger = tmp_path / "ledger"
        record_run(ledger, base)
        record_run(ledger, slow)
        rc = runs_main(["diff", str(ledger), "old0", "new0"])
        assert rc == 1

    def test_growth_within_tolerance_passes(self):
        base = self._baseline()
        ok = copy.deepcopy(base)
        ok["headline"]["wall_seconds"] = 110.0  # +10% < 20% tolerance
        ok["headline"]["phase_seconds"]["experiments"] = 88.0
        assert diff_runs(base, ok)["regressions"] == []

    def test_subsecond_noise_never_flags(self):
        base = self._baseline()
        base["headline"]["phase_seconds"]["optima"] = 0.01
        noisy = copy.deepcopy(base)
        noisy["headline"]["phase_seconds"]["optima"] = 0.1  # 10x but tiny
        assert diff_runs(base, noisy)["regressions"] == []

    def test_replication_growth_only_flags_when_comparable(self):
        base = self._baseline()
        worse = copy.deepcopy(base)
        worse["headline"]["replications_executed"] = 60
        report = diff_runs(base, worse)
        assert any("replications_executed" in r for r in report["regressions"])

        # Different config: more replications is a different workload.
        other = copy.deepcopy(worse)
        other["config"]["kernels"] = ["harris"]
        report = diff_runs(base, other)
        assert not report["comparable"]
        assert any("config.kernels" in c for c in report["changes"])
        assert not any(
            "replications_executed" in r for r in report["regressions"]
        )

    def test_more_failed_cells_flags(self):
        base = self._baseline()
        worse = copy.deepcopy(base)
        worse["headline"]["experiments_failed"] = 2
        report = diff_runs(base, worse)
        assert any("experiments_failed" in r for r in report["regressions"])


class TestDiffSchemaTolerance:
    """Old manifests predate newer config keys — that must stay neutral."""

    def _old_schema(self):
        return {
            "config": {"root_seed": 1, "kernels": ["add"]},
            "fingerprints": {"add/titan_v": "abc"},
            "headline": {
                "wall_seconds": 100.0,
                "experiments_failed": 0,
                "phase_seconds": {"experiments": 80.0},
            },
            "run_id": "old000000000",
        }

    def test_new_config_key_is_neutral(self):
        old = self._old_schema()
        new = copy.deepcopy(old)
        new["run_id"] = "new000000000"
        # Keys the old manifest's schema generation never wrote.
        new["config"]["result_store_used"] = False
        new["headline"]["store_hits"] = 0
        report = diff_runs(old, new)
        assert report["comparable"] is True
        assert report["changes"] == []
        assert report["regressions"] == []

    def test_shared_key_change_still_flags(self):
        old = self._old_schema()
        new = copy.deepcopy(old)
        new["config"]["result_store_used"] = True
        new["config"]["root_seed"] = 2
        report = diff_runs(old, new)
        assert not report["comparable"]
        assert any("config.root_seed" in c for c in report["changes"])
        # The one-sided key still never shows up as a change.
        assert not any("result_store_used" in c for c in report["changes"])

    def test_new_fingerprint_key_is_neutral(self):
        old = self._old_schema()
        new = copy.deepcopy(old)
        new["fingerprints"]["harris/a100"] = "zzz"
        report = diff_runs(old, new)
        assert report["comparable"] is True
        assert report["changes"] == []

    def test_diff_cli_tolerates_schema_drift(self, tmp_path):
        old = self._old_schema()
        new = copy.deepcopy(old)
        new["run_id"] = "new000000000"
        new["config"]["result_store_used"] = True
        ledger = tmp_path / "ledger"
        record_run(ledger, old)
        record_run(ledger, new)
        assert runs_main(["diff", str(ledger), "old0", "new0"]) == 0

    def test_manifest_records_store_usage(self, tmp_path):
        config, results = _study(
            tmp_path, result_store=tmp_path / "store"
        )
        manifest = build_manifest(config, results, created=1000.0)
        assert manifest["config"]["result_store_used"] is True
        assert manifest["headline"]["store_hits"] == 0  # cold run
        config2, results2 = _study(tmp_path, result_store=False)
        manifest2 = build_manifest(config2, results2, created=1000.0)
        assert manifest2["config"]["result_store_used"] is False


class TestCli:
    def test_list_and_show(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        record_run(ledger, {
            "created": 1.0, "run_id": "abc123def456",
            "headline": {"wall_seconds": 1.5, "experiments_total": 4,
                         "experiments_failed": 0},
        })
        assert runs_main(["list", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "abc123def456" in out

        assert runs_main(["show", str(ledger), "abc"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["run_id"] == "abc123def456"

    def test_show_unknown_run_exits_2(self, tmp_path, capsys):
        assert runs_main(["show", str(tmp_path), "nope"]) == 2

    def test_diff_json_and_tolerance_flag(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        record_run(ledger, {
            "created": 1.0, "run_id": "aaaaaaaaaaaa",
            "config": {}, "fingerprints": {},
            "headline": {"wall_seconds": 10.0},
        })
        record_run(ledger, {
            "created": 2.0, "run_id": "bbbbbbbbbbbb",
            "config": {}, "fingerprints": {},
            "headline": {"wall_seconds": 13.0},
        })
        # +30% regresses at the default 20% tolerance...
        assert runs_main(
            ["diff", str(ledger), "aaaa", "bbbb", "--json"]
        ) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["regressions"]
        # ...but passes at 50%.
        assert runs_main(
            ["diff", str(ledger), "aaaa", "bbbb",
             "--wall-tolerance", "50"]
        ) == 0
