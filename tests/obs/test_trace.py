"""Tests for the JSONL tracer, null tracer, and trace schema/reader."""

import json
import os

from repro.obs import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    tracer_for_dir,
    validate_event,
    validate_trace_lines,
    validate_trace_path,
)
from repro.obs.read import iter_trace_events, main as read_main, summarize_events


class TestJsonlTracer:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path, clock=lambda: 1234.5)
        tracer.event("tuner_start", cell="a/b/c/25/0", algorithm="a", budget=25)
        tracer.event(
            "evaluate", cell="a/b/c/25/0", index=0, config={"thread_x": 1},
            runtime_ms=1.5, best_ms=1.5, source="live",
        )
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        docs = [json.loads(line) for line in lines]
        assert docs[0] == {
            "t": 1234.5, "kind": "tuner_start", "cell": "a/b/c/25/0",
            "algorithm": "a", "budget": 25,
        }
        assert docs[1]["config"] == {"thread_x": 1}
        assert tracer.events_written == 2

    def test_creates_parent_dirs_lazily(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        tracer = JsonlTracer(path)
        assert not path.parent.exists()  # nothing until the first event
        tracer.event("model_fit", cell="x", duration_s=0.1)
        tracer.close()
        assert path.exists()

    def test_span_emits_duration(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path)
        with tracer.span("model_fit", cell="x", n_obs=7):
            pass
        tracer.close()
        doc = json.loads(path.read_text())
        assert doc["kind"] == "model_fit"
        assert doc["n_obs"] == 7
        assert doc["duration_s"] >= 0.0

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for i in range(2):
            tracer = JsonlTracer(path)
            tracer.event("propose", cell="x", duration_s=float(i))
            tracer.close()
        assert len(path.read_text().splitlines()) == 2


class TestNullTracer:
    def test_everything_is_a_noop(self, tmp_path):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.event("evaluate", cell="x")  # no error, no output
        with NULL_TRACER.span("model_fit"):
            pass
        NULL_TRACER.close()

    def test_span_is_a_shared_singleton(self):
        # The disabled path must not allocate per call.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_subclass_relationship(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestTracerForDir:
    def test_cached_per_pid_and_dir(self, tmp_path):
        a = tracer_for_dir(tmp_path / "t1")
        b = tracer_for_dir(tmp_path / "t1")
        c = tracer_for_dir(tmp_path / "t2")
        assert a is b
        assert a is not c

    def test_filename_carries_pid(self, tmp_path):
        tracer = tracer_for_dir(tmp_path)
        assert tracer.path.name == f"trace-{os.getpid()}.jsonl"


class TestSchema:
    def _evaluate(self, **over):
        doc = {
            "t": 1.0, "kind": "evaluate", "cell": "a/b/c/25/0", "index": 0,
            "config": {}, "runtime_ms": 2.0, "best_ms": 2.0, "source": "live",
        }
        doc.update(over)
        return doc

    def test_valid_event(self):
        assert validate_event(self._evaluate()) == []

    def test_missing_common_field(self):
        doc = self._evaluate()
        del doc["cell"]
        assert any("cell" in e for e in validate_event(doc))

    def test_unknown_kind(self):
        assert any(
            "unknown" in e for e in validate_event(self._evaluate(kind="boop"))
        )

    def test_missing_required_field(self):
        doc = self._evaluate()
        del doc["runtime_ms"]
        assert any("runtime_ms" in e for e in validate_event(doc))

    def test_bool_is_not_an_int(self):
        errors = validate_event(self._evaluate(index=True))
        assert any("index" in e for e in errors)

    def test_bad_source(self):
        errors = validate_event(self._evaluate(source="psychic"))
        assert any("source" in e for e in errors)

    def test_extra_fields_allowed(self):
        assert validate_event(self._evaluate(note="extra")) == []

    def test_torn_final_line_tolerated(self):
        good = json.dumps(self._evaluate())
        assert validate_trace_lines([good, '{"t": 1.0, "ki']) == []

    def test_torn_middle_line_is_an_error(self):
        good = json.dumps(self._evaluate())
        errors = validate_trace_lines(['{"t": 1.0, "ki', good])
        assert any("not valid JSON" in e for e in errors)

    def test_validate_directory(self, tmp_path):
        (tmp_path / "a.jsonl").write_text(
            json.dumps(self._evaluate()) + "\n"
        )
        (tmp_path / "b.jsonl").write_text('{"kind": "boop"}\n')
        errors = validate_trace_path(tmp_path)
        assert len(errors) >= 1
        assert all("b.jsonl" in e for e in errors)


class TestReader:
    def _write_trace(self, path):
        tracer = JsonlTracer(path, clock=lambda: 1.0)
        cell = "rs/add/titan_v/25/0"
        tracer.event("tuner_start", cell=cell, algorithm="rs", budget=2)
        for i, ms in enumerate([3.0, 2.0]):
            tracer.event(
                "evaluate", cell=cell, index=i, config={}, runtime_ms=ms,
                best_ms=min(3.0, ms), source="live",
            )
        tracer.event("tuner_end", cell=cell, samples_used=2, best_ms=2.0)
        tracer.close()

    def test_summarize(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        summary = summarize_events(iter_trace_events([path]))
        assert summary["events"] == 4
        assert summary["kinds"]["evaluate"] == 2
        cell = summary["cells"]["rs/add/titan_v/25/0"]
        assert cell["evaluate"] == 2
        assert cell["best_ms"] == 2.0

    def test_main_validate_ok(self, tmp_path, capsys):
        self._write_trace(tmp_path / "trace.jsonl")
        rc = read_main([str(tmp_path), "--validate", "--cells"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "schema: OK" in out
        assert "rs/add/titan_v/25/0" in out

    def test_main_validate_fails_on_bad_trace(self, tmp_path, capsys):
        (tmp_path / "bad.jsonl").write_text('{"kind": "boop"}\n{}\n')
        rc = read_main([str(tmp_path), "--validate"])
        assert rc == 1
        assert "schema error" in capsys.readouterr().err

    def test_main_missing_path(self, tmp_path, capsys):
        rc = read_main([str(tmp_path / "nope.jsonl")])
        assert rc == 2

    def test_main_json_output(self, tmp_path, capsys):
        self._write_trace(tmp_path / "trace.jsonl")
        rc = read_main([str(tmp_path), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["events"] == 4
