"""Tests for the metrics registry and its Prometheus/JSON exports."""

import pytest

from repro.obs import (
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("evals_total").inc()
        reg.counter("evals_total").inc(4.0)
        assert reg.counter("evals_total").value == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1.0)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("workers")
        g.set(4)
        g.dec()
        g.inc(2)
        assert g.value == 5.0

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)
        assert h.bucket_counts == [1, 1]  # 5.0 only in implicit +Inf

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", path="/a").inc()
        reg.counter("hits", path="/b").inc(2)
        assert reg.counter("hits", path="/a").value == 1.0
        assert reg.counter("hits", path="/b").value == 2.0


class TestPrometheusExport:
    def test_counter_line(self):
        reg = MetricsRegistry()
        reg.counter("evals_total", help="total evaluations").inc(7)
        text = reg.to_prometheus()
        assert "# HELP evals_total total evaluations\n" in text
        assert "# TYPE evals_total counter\n" in text
        assert "evals_total 7\n" in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a\\b"c\nd').inc()
        text = reg.to_prometheus()
        assert 'c{path="a\\\\b\\"c\\nd"} 1' in text

    def test_label_keys_sorted(self):
        reg = MetricsRegistry()
        reg.counter("c", zebra="1", alpha="2").inc()
        text = reg.to_prometheus()
        assert 'c{alpha="2",zebra="1"} 1' in text

    def test_families_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zzz").inc()
        reg.counter("aaa").inc()
        text = reg.to_prometheus()
        assert text.index("aaa") < text.index("zzz")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert "lat_sum 5.55" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestJsonExport:
    def test_structure(self):
        reg = MetricsRegistry()
        reg.counter("evals_total").inc(3)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        doc = reg.to_json()
        assert doc["evals_total"]["type"] == "counter"
        assert doc["evals_total"]["series"][0]["value"] == 3.0
        lat = doc["lat"]["series"][0]
        assert lat["buckets"] == [1.0]
        assert lat["count"] == 1

    def test_to_json_text_round_trips(self):
        import json

        reg = MetricsRegistry()
        reg.gauge("workers").set(2)
        assert json.loads(reg.to_json_text())["workers"]["type"] == "gauge"


class TestCrossProcessMerging:
    def test_flat_counters_skips_zero_and_labeled(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.counter("zero")  # never incremented
        reg.counter("labeled", cell="x").inc()
        reg.histogram("lat").observe(0.25)
        flat = reg.flat_counters()
        assert flat == {"a": 2.0, "lat_sum": 0.25, "lat_count": 1.0}

    def test_merge_flat_is_additive(self):
        parent = MetricsRegistry()
        parent.counter("a").inc(1)
        parent.merge_flat({"a": 2.0, "b": 3.0})
        parent.merge_flat({"a": 0.5})
        assert parent.counter("a").value == 3.5
        assert parent.counter("b").value == 3.0


class TestGlobalRegistry:
    def test_singleton_until_reset(self):
        reset_global_registry()
        a = global_registry()
        assert global_registry() is a
        reset_global_registry()
        assert global_registry() is not a


class TestHistogramNaNGuard:
    def test_observe_nan_rejected(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(0.5)
        with pytest.raises(ValueError, match="NaN"):
            h.observe(float("nan"))
        # The poisoning observation left no trace.
        assert h.sum == 0.5
        assert h.count == 1


class TestMergeFlatHistograms:
    def test_flat_entries_merge_into_histogram_family(self):
        worker = MetricsRegistry()
        worker.histogram("fit_seconds").observe(0.25)
        worker.histogram("fit_seconds").observe(0.75)
        worker.counter("evals_total").inc(5)

        parent = MetricsRegistry()
        parent.histogram("fit_seconds").observe(0.5)
        parent.merge_flat(worker.flat_counters())

        h = parent.histogram("fit_seconds")
        assert h.sum == pytest.approx(1.5)
        assert h.count == 3
        assert parent.counter("evals_total").value == 5.0
        # No counter families shadowing the histogram's sample names.
        doc = parent.to_json()
        assert "fit_seconds_sum" not in doc
        assert "fit_seconds_count" not in doc

    def test_no_duplicate_prometheus_sample_names(self):
        worker = MetricsRegistry()
        worker.histogram("fit_seconds").observe(0.25)

        parent = MetricsRegistry()
        parent.histogram("fit_seconds").observe(0.5)
        parent.merge_flat(worker.flat_counters())
        text = parent.to_prometheus()
        # Each (sample name, label set) appears exactly once — before the
        # fix, merge_flat registered fit_seconds_sum / fit_seconds_count
        # counters next to the histogram's samples of the same names.
        series = [
            line.rsplit(" ", 1)[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert len(series) == len(set(series))
        assert "fit_seconds_sum" in text
        assert "# TYPE fit_seconds_sum counter" not in text

    def test_merge_without_histogram_still_counts(self):
        # A registry with no histogram family keeps the old behavior:
        # flat _sum/_count entries accumulate as counters.
        parent = MetricsRegistry()
        parent.merge_flat({"fit_seconds_sum": 0.5, "fit_seconds_count": 2.0})
        assert parent.counter("fit_seconds_sum").value == 0.5
        assert parent.counter("fit_seconds_count").value == 2.0

    def test_histogram_registration_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("lat_sum").inc()
        with pytest.raises(ValueError, match="collide"):
            reg.histogram("lat")

    def test_merged_count_lands_in_inf_bucket(self):
        worker = MetricsRegistry()
        worker.histogram("lat").observe(0.25)
        parent = MetricsRegistry()
        parent.histogram("lat")  # family exists, no observations
        parent.merge_flat(worker.flat_counters())
        text = parent.to_prometheus()
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
