"""The zero-impact contract: observability must never change results.

Tracing and metrics are read-only taps — they consume no RNG and feed
nothing back into the search.  These tests run every live tuner twice
against the same landscape and seed, once bare and once fully observed
(JSONL tracer + metrics registry), and require bit-identical
``TuningResult``s plus an identical post-run RNG stream.
"""

import json

import numpy as np
import pytest

from repro.gpu import TITAN_V, SimulatedDevice
from repro.kernels import get_kernel
from repro.obs import JsonlTracer, MetricsRegistry
from repro.search import Objective, make_tuner

LIVE_TUNERS = ["genetic_algorithm", "bo_gp", "bo_tpe"]


def _run(tuner_name, budget, seed, tracer=None, metrics=None, cell=""):
    kernel = get_kernel("add", 512, 512)
    device = SimulatedDevice(
        TITAN_V, kernel.profile(), rng=np.random.default_rng(seed)
    )
    objective = Objective(
        kernel.space(),
        lambda c: device.measure(c).runtime_ms,
        budget=budget,
        tracer=tracer,
        metrics=metrics,
        cell=cell,
    )
    rng = np.random.default_rng(seed)
    tuner = make_tuner(tuner_name)
    result = tuner.run(objective, rng)
    # The post-run stream exposes any hidden RNG consumption.
    return result, rng.random(8).tolist(), objective.best_curve


@pytest.mark.parametrize("name", LIVE_TUNERS)
def test_observed_run_is_bit_identical(name, tmp_path):
    bare_result, bare_stream, bare_curve = _run(name, budget=20, seed=3)
    tracer = JsonlTracer(tmp_path / "trace.jsonl")
    registry = MetricsRegistry()
    obs_result, obs_stream, obs_curve = _run(
        name, budget=20, seed=3, tracer=tracer, metrics=registry,
        cell=f"{name}/add/titan_v/20/0",
    )
    tracer.close()

    assert obs_result.best_config == bare_result.best_config
    assert obs_result.best_runtime_ms == bare_result.best_runtime_ms
    assert obs_result.history_configs == bare_result.history_configs
    assert obs_result.history_runtimes == bare_result.history_runtimes
    assert obs_result.samples_used == bare_result.samples_used
    assert obs_stream == bare_stream
    assert obs_curve == bare_curve

    # And the observed run actually observed something.
    events = [
        json.loads(line)
        for line in (tmp_path / "trace.jsonl").read_text().splitlines()
    ]
    kinds = {e["kind"] for e in events}
    assert {"tuner_start", "evaluate", "tuner_end"} <= kinds
    assert sum(e["kind"] == "evaluate" for e in events) == 20
    assert registry.counter("evaluations_total").value == 20.0


class TestStudyLevelParity:
    """Spans, profiling, and the run ledger never change study results."""

    def _config(self):
        from repro.experiments import ExperimentDesign, StudyConfig

        return StudyConfig(
            design=ExperimentDesign(
                sample_sizes=(25,), experiments_at_largest=2
            ),
            algorithms=("random_search", "genetic_algorithm"),
            kernels=("add",),
            archs=("titan_v",),
            image_x=512,
            image_y=512,
            workers=1,
        )

    def test_fully_observed_study_is_bit_identical(self, tmp_path):
        from repro.experiments import run_study
        from repro.experiments.optimum import clear_optimum_cache

        cache = tmp_path / "cache"
        bare = run_study(self._config(), landscape_cache=cache)
        clear_optimum_cache()
        observed = run_study(
            self._config(),
            landscape_cache=cache,
            trace_dir=tmp_path / "trace",
            trace_level="full",
            profile=True,
            run_ledger=tmp_path / "ledger",
            metrics=MetricsRegistry(),
        )
        # ExperimentResult equality covers configs, runtimes, and
        # curves (the metrics payload is excluded by its dataclass
        # field, compare=False) — bit-identical modulo observability.
        assert observed.results == bare.results
        assert observed.optima == bare.optima
        # And the observability artifacts all materialized.
        assert "run_id" in observed.metadata
        assert observed.metadata["profile"]["phases"]
        spans = [
            json.loads(line)
            for f in (tmp_path / "trace").glob("*.jsonl")
            for line in f.read_text().splitlines()
            if '"span"' in line
        ]
        assert any(e.get("name") == "study" for e in spans)

    def test_spans_only_level_emits_no_trajectory_events(self, tmp_path):
        from repro.experiments import run_study

        run_study(
            self._config(),
            landscape_cache=tmp_path / "cache",
            trace_dir=tmp_path / "trace",
            trace_level="spans",
        )
        kinds = {
            json.loads(line)["kind"]
            for f in (tmp_path / "trace").glob("*.jsonl")
            for line in f.read_text().splitlines()
            if line.strip()
        }
        assert kinds == {"span"}

    def test_invalid_trace_level_rejected(self, tmp_path):
        from repro.experiments import run_study

        with pytest.raises(ValueError, match="trace_level"):
            run_study(
                self._config(),
                landscape_cache=tmp_path / "cache",
                trace_dir=tmp_path / "trace",
                trace_level="verbose",
            )


def test_trace_matches_history(tmp_path):
    tracer = JsonlTracer(tmp_path / "trace.jsonl")
    result, _, _ = _run(
        "genetic_algorithm", budget=15, seed=9, tracer=tracer,
        metrics=MetricsRegistry(), cell="ga/add/titan_v/15/0",
    )
    tracer.close()
    events = [
        json.loads(line)
        for line in (tmp_path / "trace.jsonl").read_text().splitlines()
    ]
    evals = [e for e in events if e["kind"] == "evaluate"]
    assert [e["index"] for e in evals] == list(range(15))
    assert [e["runtime_ms"] for e in evals] == result.history_runtimes
    assert [e["config"] for e in evals] == result.history_configs
