"""The zero-impact contract: observability must never change results.

Tracing and metrics are read-only taps — they consume no RNG and feed
nothing back into the search.  These tests run every live tuner twice
against the same landscape and seed, once bare and once fully observed
(JSONL tracer + metrics registry), and require bit-identical
``TuningResult``s plus an identical post-run RNG stream.
"""

import json

import numpy as np
import pytest

from repro.gpu import TITAN_V, SimulatedDevice
from repro.kernels import get_kernel
from repro.obs import JsonlTracer, MetricsRegistry
from repro.search import Objective, make_tuner

LIVE_TUNERS = ["genetic_algorithm", "bo_gp", "bo_tpe"]


def _run(tuner_name, budget, seed, tracer=None, metrics=None, cell=""):
    kernel = get_kernel("add", 512, 512)
    device = SimulatedDevice(
        TITAN_V, kernel.profile(), rng=np.random.default_rng(seed)
    )
    objective = Objective(
        kernel.space(),
        lambda c: device.measure(c).runtime_ms,
        budget=budget,
        tracer=tracer,
        metrics=metrics,
        cell=cell,
    )
    rng = np.random.default_rng(seed)
    tuner = make_tuner(tuner_name)
    result = tuner.run(objective, rng)
    # The post-run stream exposes any hidden RNG consumption.
    return result, rng.random(8).tolist(), objective.best_curve


@pytest.mark.parametrize("name", LIVE_TUNERS)
def test_observed_run_is_bit_identical(name, tmp_path):
    bare_result, bare_stream, bare_curve = _run(name, budget=20, seed=3)
    tracer = JsonlTracer(tmp_path / "trace.jsonl")
    registry = MetricsRegistry()
    obs_result, obs_stream, obs_curve = _run(
        name, budget=20, seed=3, tracer=tracer, metrics=registry,
        cell=f"{name}/add/titan_v/20/0",
    )
    tracer.close()

    assert obs_result.best_config == bare_result.best_config
    assert obs_result.best_runtime_ms == bare_result.best_runtime_ms
    assert obs_result.history_configs == bare_result.history_configs
    assert obs_result.history_runtimes == bare_result.history_runtimes
    assert obs_result.samples_used == bare_result.samples_used
    assert obs_stream == bare_stream
    assert obs_curve == bare_curve

    # And the observed run actually observed something.
    events = [
        json.loads(line)
        for line in (tmp_path / "trace.jsonl").read_text().splitlines()
    ]
    kinds = {e["kind"] for e in events}
    assert {"tuner_start", "evaluate", "tuner_end"} <= kinds
    assert sum(e["kind"] == "evaluate" for e in events) == 20
    assert registry.counter("evaluations_total").value == 20.0


def test_trace_matches_history(tmp_path):
    tracer = JsonlTracer(tmp_path / "trace.jsonl")
    result, _, _ = _run(
        "genetic_algorithm", budget=15, seed=9, tracer=tracer,
        metrics=MetricsRegistry(), cell="ga/add/titan_v/15/0",
    )
    tracer.close()
    events = [
        json.loads(line)
        for line in (tmp_path / "trace.jsonl").read_text().splitlines()
    ]
    evals = [e for e in events if e["kind"] == "evaluate"]
    assert [e["index"] for e in evals] == list(range(15))
    assert [e["runtime_ms"] for e in evals] == result.history_runtimes
    assert [e["config"] for e in evals] == result.history_configs
