"""Hierarchical span tracing: emission, propagation, and reading back.

Covers the span lifecycle end to end — :class:`SpanScope` event
emission and schema validity, cross-process propagation of
:class:`SpanContext` through :class:`~repro.parallel.ParallelMap`
workers, forest reconstruction from the merged event stream, and the
per-phase/per-worker attribution the profiler builds on.
"""

import json
import os
import pickle

import pytest

from repro.obs import validate_trace_path
from repro.obs.spans import (
    SpanContext,
    SpanScope,
    build_span_forest,
    child_span,
    new_span_id,
    render_span_tree,
    span_attribution,
    worker_timeline,
    _union_seconds,
)
from repro.obs.trace import tracer_for_dir
from repro.parallel import ParallelMap


def _read_events(trace_dir):
    events = []
    for path in sorted(trace_dir.glob("*.jsonl")):
        for line in path.read_text().splitlines():
            if line.strip():
                events.append(json.loads(line))
    return events


def _close_tracers(trace_dir):
    tracer_for_dir(str(trace_dir)).close()


class TestSpanScope:
    def test_emits_one_schema_valid_span_event(self, tmp_path):
        with SpanScope(tmp_path, "study", subject="seed=1"):
            pass
        _close_tracers(tmp_path)
        events = _read_events(tmp_path)
        assert len(events) == 1
        doc = events[0]
        assert doc["kind"] == "span"
        assert doc["name"] == "study"
        assert doc["subject"] == "seed=1"
        assert doc["pid"] == os.getpid()
        assert doc["duration_s"] >= 0
        assert doc["cpu_s"] >= 0
        assert "parent_id" not in doc
        assert validate_trace_path(tmp_path) == []

    def test_context_exists_before_enter(self, tmp_path):
        scope = SpanScope(tmp_path, "phase", subject="experiments")
        # A parent can hand its context to children before the clock
        # starts — that is what lets the study mint the experiments
        # span and ship its ctx inside tasks before dispatch.
        assert isinstance(scope.ctx, SpanContext)
        assert scope.ctx.span_id == scope.span_id
        with scope as ctx:
            assert ctx is scope.ctx
        _close_tracers(tmp_path)

    def test_child_links_to_parent_and_inherits_trace_id(self, tmp_path):
        with SpanScope(tmp_path, "study") as study_ctx:
            with child_span(study_ctx, "phase", subject="optima") as child:
                assert child.trace_id == study_ctx.trace_id
        _close_tracers(tmp_path)
        events = _read_events(tmp_path)
        by_name = {e["name"]: e for e in events}
        assert by_name["phase"]["parent_id"] == by_name["study"]["span_id"]
        assert by_name["phase"]["trace_id"] == by_name["study"]["trace_id"]

    def test_exception_recorded_and_propagated(self, tmp_path):
        with pytest.raises(ValueError):
            with SpanScope(tmp_path, "cell", subject="x"):
                raise ValueError("boom")
        _close_tracers(tmp_path)
        (doc,) = _read_events(tmp_path)
        assert doc["error"] == "ValueError"
        assert validate_trace_path(tmp_path) == []

    def test_extra_fields_ride_on_the_event(self, tmp_path):
        with SpanScope(tmp_path, "worker-chunk", fields={"tasks": 7}):
            pass
        _close_tracers(tmp_path)
        (doc,) = _read_events(tmp_path)
        assert doc["tasks"] == 7

    def test_context_is_picklable_and_hashable(self):
        ctx = SpanContext("/tmp/t", new_span_id(), new_span_id())
        assert pickle.loads(pickle.dumps(ctx)) == ctx
        assert len({ctx, ctx}) == 1

    def test_span_ids_unique(self):
        ids = {new_span_id() for _ in range(256)}
        assert len(ids) == 256
        assert all(len(i) == 16 for i in ids)


def _spanned_task(payload):
    """Module-level so ParallelMap can pickle it to workers."""
    return (os.getpid(), payload * 2)


class TestCrossProcess:
    def test_worker_chunks_parent_on_propagated_context(self, tmp_path):
        parent = SpanScope(tmp_path, "phase", subject="experiments")
        pool = ParallelMap(workers=2, span_context=parent.ctx)
        with parent:
            outcomes = pool.run(_spanned_task, list(range(8)))
        _close_tracers(tmp_path)
        assert [o.result[1] for o in outcomes] == [i * 2 for i in range(8)]

        events = _read_events(tmp_path)
        chunks = [e for e in events if e.get("name") == "worker-chunk"]
        assert chunks, "workers emitted no chunk spans"
        assert all(c["parent_id"] == parent.span_id for c in chunks)
        assert all(c["trace_id"] == parent.trace_id for c in chunks)
        # Worker spans come from worker processes, not the parent.
        assert all(c["pid"] != os.getpid() for c in chunks)
        assert sum(c["tasks"] for c in chunks) == 8
        assert validate_trace_path(tmp_path) == []

    def test_serial_pool_emits_no_worker_spans(self, tmp_path):
        parent = SpanScope(tmp_path, "phase", subject="experiments")
        pool = ParallelMap(workers=1, span_context=parent.ctx)
        with parent:
            pool.run(_spanned_task, list(range(4)))
        _close_tracers(tmp_path)
        events = _read_events(tmp_path)
        assert [e["name"] for e in events if e["kind"] == "span"] == ["phase"]


def _forest_events():
    """A hand-built two-process span stream."""
    return [
        {"kind": "span", "span_id": "s1", "name": "study",
         "start": 0.0, "duration_s": 10.0, "cpu_s": 4.0, "pid": 100},
        {"kind": "span", "span_id": "p1", "parent_id": "s1",
         "name": "phase", "subject": "landscapes",
         "start": 0.0, "duration_s": 4.0, "cpu_s": 3.0, "pid": 100},
        {"kind": "span", "span_id": "p2", "parent_id": "s1",
         "name": "phase", "subject": "experiments",
         "start": 4.0, "duration_s": 6.0, "cpu_s": 1.0, "pid": 100},
        {"kind": "span", "span_id": "w1", "parent_id": "p2",
         "name": "worker-chunk", "start": 4.5, "duration_s": 5.0,
         "cpu_s": 4.5, "pid": 200, "rss_kb": 1024},
        {"kind": "span", "span_id": "c1", "parent_id": "w1",
         "name": "cell", "subject": "rs/add/titan_v/25/0",
         "start": 4.6, "duration_s": 2.0, "cpu_s": 1.9, "pid": 200},
        # Parent never recorded (killed worker): becomes a root.
        {"kind": "span", "span_id": "x1", "parent_id": "gone",
         "name": "cell", "subject": "orphan",
         "start": 9.0, "duration_s": 0.5, "cpu_s": 0.4, "pid": 300},
        {"kind": "evaluate", "cell": "rs/add/titan_v/25/0", "index": 0},
    ]


class TestForest:
    def test_tree_structure(self):
        roots = build_span_forest(_forest_events())
        assert [r.label for r in roots] == ["study", "cell orphan"]
        study = roots[0]
        assert [c.subject for c in study.children] == [
            "landscapes", "experiments",
        ]
        chunk = study.children[1].children[0]
        assert chunk.name == "worker-chunk"
        assert [c.subject for c in chunk.children] == ["rs/add/titan_v/25/0"]

    def test_render_connects_last_child(self):
        text = render_span_tree(build_span_forest(_forest_events()))
        # Every non-root line carries a branch connector — the last
        # child of a root must not render as a fake sibling root.
        assert "└─ phase experiments" in text
        assert "├─ phase landscapes" in text
        assert "[pid 200]" in text

    def test_max_depth_truncates(self):
        text = render_span_tree(
            build_span_forest(_forest_events()), max_depth=1
        )
        assert "phase experiments" in text
        assert "worker-chunk" not in text

    def test_union_seconds_handles_nesting_and_gaps(self):
        assert _union_seconds([(0, 4), (1, 2)]) == 4.0
        assert _union_seconds([(0, 1), (2, 3)]) == 2.0
        assert _union_seconds([]) == 0.0

    def test_attribution(self):
        attr = span_attribution(_forest_events())
        assert attr["total_s"] == 10.0
        assert attr["study_pid"] == 100
        assert attr["phases"]["landscapes"]["wall_s"] == 4.0
        assert attr["phases"]["experiments"]["cpu_s"] == 1.0
        w = attr["workers"][200]
        # cell nests inside its chunk: busy time is the union, not sum.
        assert w["busy_s"] == 5.0
        assert w["spans"] == 2
        assert w["rss_kb_peak"] == 1024

    def test_worker_timeline_shades_by_busy_fraction(self):
        text = worker_timeline(_forest_events(), width=20)
        lines = text.splitlines()
        assert lines[0].startswith("timeline:")
        row_100 = next(l for l in lines if "pid      100" in l)
        # pid 100's study span covers the whole extent.
        assert "#" * 20 in row_100
        assert worker_timeline([{"kind": "evaluate"}]) == "(no spans)"
