"""Unit tests for tunable parameter types."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.searchspace import (
    CategoricalParameter,
    IntegerParameter,
    OrdinalParameter,
    PowerOfTwoParameter,
)


class TestIntegerParameter:
    def test_cardinality(self):
        p = IntegerParameter("t", 1, 16)
        assert p.cardinality == 16

    def test_single_value_range(self):
        p = IntegerParameter("t", 5, 5)
        assert p.cardinality == 1
        assert p.value_at(0) == 5

    def test_values_enumeration(self):
        p = IntegerParameter("t", 3, 6)
        assert list(p.values()) == [3, 4, 5, 6]

    def test_value_index_roundtrip(self):
        p = IntegerParameter("t", 2, 9)
        for i in range(p.cardinality):
            assert p.index_of(p.value_at(i)) == i

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            IntegerParameter("t", 5, 4)

    def test_value_at_out_of_range(self):
        p = IntegerParameter("t", 1, 4)
        with pytest.raises(IndexError):
            p.value_at(4)
        with pytest.raises(IndexError):
            p.value_at(-1)

    def test_index_of_rejects_outside(self):
        p = IntegerParameter("t", 1, 4)
        with pytest.raises(ValueError):
            p.index_of(0)
        with pytest.raises(ValueError):
            p.index_of(5)

    def test_index_of_rejects_non_integer(self):
        p = IntegerParameter("t", 1, 4)
        with pytest.raises(ValueError):
            p.index_of(2.5)

    def test_contains(self):
        p = IntegerParameter("t", 1, 4)
        assert 1 in p and 4 in p
        assert 0 not in p and 5 not in p

    def test_sample_within_range(self):
        p = IntegerParameter("t", 1, 16)
        rng = np.random.default_rng(0)
        draws = [p.sample(rng) for _ in range(200)]
        assert all(1 <= d <= 16 for d in draws)
        assert len(set(draws)) > 10  # actually spreads out

    def test_sample_deterministic_with_seed(self):
        p = IntegerParameter("t", 1, 16)
        a = [p.sample(np.random.default_rng(7)) for _ in range(5)]
        b = [p.sample(np.random.default_rng(7)) for _ in range(5)]
        assert a == b

    def test_to_feature_is_value(self):
        p = IntegerParameter("t", 1, 16)
        assert p.to_feature(7) == 7.0

    def test_is_ordinal(self):
        assert IntegerParameter("t", 1, 4).is_ordinal

    @given(st.integers(-50, 50), st.integers(0, 100))
    def test_roundtrip_property(self, low, span):
        p = IntegerParameter("t", low, low + span)
        for idx in (0, span // 2, span):
            assert p.index_of(p.value_at(idx)) == idx


class TestOrdinalParameter:
    def test_choices(self):
        p = OrdinalParameter("v", choices=(1, 2, 4, 8))
        assert p.cardinality == 4
        assert p.value_at(2) == 4
        assert p.index_of(8) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OrdinalParameter("v", choices=())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            OrdinalParameter("v", choices=(1, 1, 2))

    def test_index_of_missing(self):
        p = OrdinalParameter("v", choices=(1, 2, 4))
        with pytest.raises(ValueError):
            p.index_of(3)

    def test_to_feature(self):
        p = OrdinalParameter("v", choices=(1, 2, 4))
        assert p.to_feature(4) == 4.0


class TestPowerOfTwoParameter:
    def test_full_range(self):
        p = PowerOfTwoParameter("v", low=1, high=8)
        assert tuple(p.values()) == (1, 2, 4, 8)

    def test_partial_range(self):
        p = PowerOfTwoParameter("v", low=3, high=20)
        assert tuple(p.values()) == (4, 8, 16)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            PowerOfTwoParameter("v", low=0, high=8)


class TestCategoricalParameter:
    def test_basics(self):
        p = CategoricalParameter("layout", choices=("row", "col", "tiled"))
        assert p.cardinality == 3
        assert p.value_at(1) == "col"
        assert p.index_of("tiled") == 2
        assert not p.is_ordinal

    def test_to_feature_is_index(self):
        p = CategoricalParameter("layout", choices=("row", "col"))
        assert p.to_feature("col") == 1.0

    def test_missing_value(self):
        p = CategoricalParameter("layout", choices=("row",))
        with pytest.raises(ValueError):
            p.index_of("col")
