"""Unit tests for constraint specifications."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.searchspace import (
    ConstraintSet,
    PredicateConstraint,
    ProductLimitConstraint,
    SumLimitConstraint,
    workgroup_product_limit,
)


class TestProductLimit:
    def test_boundary_inclusive(self):
        c = ProductLimitConstraint(("x", "y"), 12)
        assert c.is_satisfied({"x": 3, "y": 4})
        assert not c.is_satisfied({"x": 3, "y": 5})

    def test_paper_constraint_factory(self):
        c = workgroup_product_limit()
        assert c.limit == 256
        assert c.parameter_names == ("wg_x", "wg_y", "wg_z")
        assert c.is_satisfied({"wg_x": 8, "wg_y": 8, "wg_z": 4})
        assert not c.is_satisfied({"wg_x": 8, "wg_y": 8, "wg_z": 8})

    def test_describe(self):
        c = workgroup_product_limit()
        assert "wg_x * wg_y * wg_z <= 256" == c.describe()

    def test_callable_protocol(self):
        c = ProductLimitConstraint(("x",), 4)
        assert c({"x": 4}) and not c({"x": 5})

    @given(
        st.integers(1, 8), st.integers(1, 8), st.integers(1, 8)
    )
    def test_matches_direct_product(self, x, y, z):
        c = workgroup_product_limit()
        cfg = {"wg_x": x, "wg_y": y, "wg_z": z}
        assert c.is_satisfied(cfg) == (x * y * z <= 256)


class TestSumLimit:
    def test_boundary(self):
        c = SumLimitConstraint(("a", "b"), 5.0)
        assert c.is_satisfied({"a": 2, "b": 3})
        assert not c.is_satisfied({"a": 3, "b": 3})

    def test_describe(self):
        assert SumLimitConstraint(("a", "b"), 5.0).describe() == "a + b <= 5.0"


class TestPredicate:
    def test_wraps_callable(self):
        c = PredicateConstraint(lambda cfg: cfg["x"] % 2 == 0, name="even-x")
        assert c.is_satisfied({"x": 2})
        assert not c.is_satisfied({"x": 3})
        assert c.describe() == "even-x"


class TestConstraintSet:
    def test_empty_set_accepts_everything(self):
        cs = ConstraintSet()
        assert cs.is_satisfied({"anything": 1})
        assert cs.describe() == "(unconstrained)"

    def test_conjunction(self):
        cs = ConstraintSet(
            [
                ProductLimitConstraint(("x", "y"), 12),
                SumLimitConstraint(("x", "y"), 6.0),
            ]
        )
        assert cs.is_satisfied({"x": 2, "y": 4})       # prod 8, sum 6
        assert not cs.is_satisfied({"x": 3, "y": 4})   # sum 7
        assert not cs.is_satisfied({"x": 1, "y": 13})  # prod 13

    def test_violated_lists_failures(self):
        prod = ProductLimitConstraint(("x", "y"), 2)
        tot = SumLimitConstraint(("x", "y"), 3.0)
        cs = ConstraintSet([prod, tot])
        violated = cs.violated({"x": 2, "y": 2})
        assert prod in violated and tot in violated
        assert cs.violated({"x": 1, "y": 1}) == []

    def test_extended_is_nonmutating(self):
        cs = ConstraintSet([ProductLimitConstraint(("x",), 2)])
        bigger = cs.extended(SumLimitConstraint(("x",), 1.0))
        assert len(cs) == 1 and len(bigger) == 2

    def test_iteration_and_len(self):
        items = [ProductLimitConstraint(("x",), 2)]
        cs = ConstraintSet(items)
        assert list(cs) == items
        assert len(cs) == 1
