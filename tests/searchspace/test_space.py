"""Unit and property tests for SearchSpace encodings and sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.searchspace import (
    IntegerParameter,
    PAPER_SPACE_SIZE,
    SearchSpace,
    paper_search_space,
    workgroup_product_limit,
)


@pytest.fixture
def small_space():
    return SearchSpace(
        [
            IntegerParameter("a", 1, 3),
            IntegerParameter("b", 0, 1),
            IntegerParameter("c", 2, 5),
        ]
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(
                [IntegerParameter("a", 1, 2), IntegerParameter("a", 1, 3)]
            )

    def test_constraint_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(
                [IntegerParameter("a", 1, 2)],
                [workgroup_product_limit(("a", "zz"), 4)],
            )

    def test_size(self, small_space):
        assert small_space.size == 3 * 2 * 4
        assert len(small_space) == 24

    def test_paper_space_size(self):
        assert paper_search_space().size == PAPER_SPACE_SIZE == 2_097_152

    def test_paper_space_parameters(self):
        space = paper_search_space()
        assert space.names == [
            "thread_x", "thread_y", "thread_z", "wg_x", "wg_y", "wg_z",
        ]
        for name in ("thread_x", "thread_y", "thread_z"):
            assert space.parameter(name).cardinality == 16
        for name in ("wg_x", "wg_y", "wg_z"):
            assert space.parameter(name).cardinality == 8

    def test_parameter_lookup_missing(self, small_space):
        with pytest.raises(KeyError):
            small_space.parameter("zzz")


class TestEncodings:
    def test_flat_roundtrip_exhaustive(self, small_space):
        seen = set()
        for flat in range(small_space.size):
            cfg = small_space.flat_to_config(flat)
            assert small_space.config_to_flat(cfg) == flat
            seen.add(tuple(sorted(cfg.items())))
        assert len(seen) == small_space.size  # bijective

    def test_indices_roundtrip(self, small_space):
        idx = np.array([2, 1, 3])
        cfg = small_space.indices_to_config(idx)
        assert cfg == {"a": 3, "b": 1, "c": 5}
        np.testing.assert_array_equal(
            small_space.config_to_indices(cfg), idx
        )

    def test_flat_out_of_range(self, small_space):
        with pytest.raises(ValueError):
            small_space.flat_to_indices(-1)
        with pytest.raises(ValueError):
            small_space.flat_to_indices(small_space.size)

    def test_indices_out_of_range(self, small_space):
        with pytest.raises(ValueError):
            small_space.indices_to_flat([3, 0, 0])

    def test_wrong_dimension_count(self, small_space):
        with pytest.raises(ValueError):
            small_space.indices_to_config([0, 0])

    def test_flats_to_index_matrix_matches_scalar(self, small_space):
        flats = np.arange(small_space.size)
        mat = small_space.flats_to_index_matrix(flats)
        for f in [0, 7, 23]:
            np.testing.assert_array_equal(
                mat[f], small_space.flat_to_indices(f)
            )

    def test_validate_config(self, small_space):
        small_space.validate_config({"a": 1, "b": 0, "c": 2})
        with pytest.raises(KeyError):
            small_space.validate_config({"a": 1, "b": 0})
        with pytest.raises(KeyError):
            small_space.validate_config({"a": 1, "b": 0, "c": 2, "d": 1})
        with pytest.raises(ValueError):
            small_space.validate_config({"a": 99, "b": 0, "c": 2})

    @given(st.integers(0, PAPER_SPACE_SIZE - 1))
    @settings(max_examples=60)
    def test_paper_space_flat_roundtrip(self, flat):
        space = paper_search_space()
        assert space.config_to_flat(space.flat_to_config(flat)) == flat


class TestFeatures:
    def test_to_features_shape_and_values(self, small_space):
        cfgs = [{"a": 1, "b": 0, "c": 2}, {"a": 3, "b": 1, "c": 5}]
        feats = small_space.to_features(cfgs)
        np.testing.assert_array_equal(
            feats, [[1.0, 0.0, 2.0], [3.0, 1.0, 5.0]]
        )

    def test_index_matrix_to_features(self, small_space):
        idx = np.array([[0, 0, 0], [2, 1, 3]])
        feats = small_space.index_matrix_to_features(idx)
        np.testing.assert_array_equal(
            feats, [[1.0, 0.0, 2.0], [3.0, 1.0, 5.0]]
        )

    def test_feature_bounds(self, small_space):
        bounds = small_space.feature_bounds()
        np.testing.assert_array_equal(
            bounds, [[1, 3], [0, 1], [2, 5]]
        )


class TestConstraints:
    def test_paper_constraint_accepts_256(self):
        space = paper_search_space()
        cfg = space.flat_to_config(0)
        cfg.update({"wg_x": 8, "wg_y": 8, "wg_z": 4})
        assert space.is_feasible(cfg)

    def test_paper_constraint_rejects_512(self):
        space = paper_search_space()
        cfg = space.flat_to_config(0)
        cfg.update({"wg_x": 8, "wg_y": 8, "wg_z": 8})
        assert not space.is_feasible(cfg)

    def test_unconstrained_variant(self):
        space = paper_search_space(constrained=False)
        cfg = space.flat_to_config(0)
        cfg.update({"wg_x": 8, "wg_y": 8, "wg_z": 8})
        assert space.is_feasible(cfg)

    def test_without_constraints(self):
        space = paper_search_space()
        assert len(space.without_constraints().constraints) == 0
        # original untouched
        assert len(space.constraints) == 1

    def test_with_constraints_extends(self, small_space):
        limited = small_space.with_constraints(
            workgroup_product_limit(("a", "c"), 6)
        )
        assert limited.is_feasible({"a": 1, "b": 0, "c": 5})
        assert not limited.is_feasible({"a": 3, "b": 0, "c": 5})

    def test_count_feasible_exact_small(self, small_space):
        limited = small_space.with_constraints(
            workgroup_product_limit(("a", "c"), 6)
        )
        expected = sum(
            1
            for a in (1, 2, 3)
            for b in (0, 1)
            for c in (2, 3, 4, 5)
            if a * c <= 6
        )
        assert limited.count_feasible() == expected


class TestFeasibleMask:
    def test_matches_per_row_checks_paper_space(self):
        space = paper_search_space()
        flats = np.random.default_rng(0).integers(0, space.size, 2000)
        mask = space.feasible_mask(flats)
        expected = np.array(
            [space.is_feasible(space.flat_to_config(int(f))) for f in flats]
        )
        np.testing.assert_array_equal(mask, expected)
        assert 0 < mask.sum() < mask.size  # both classes exercised

    def test_unconstrained_all_true(self, small_space):
        mask = small_space.feasible_mask(np.arange(small_space.size))
        assert mask.all()

    def test_empty_input(self):
        space = paper_search_space()
        assert space.feasible_mask(np.array([], dtype=np.int64)).shape == (0,)

    def test_predicate_constraint_falls_back_per_row(self, small_space):
        from repro.searchspace import PredicateConstraint

        calls = []

        def odd_sum(cfg):
            calls.append(dict(cfg))
            return (cfg["a"] + cfg["c"]) % 2 == 1

        limited = small_space.with_constraints(
            workgroup_product_limit(("a", "c"), 6),
            PredicateConstraint(odd_sum, name="odd-sum"),
        )
        flats = np.arange(limited.size)
        mask = limited.feasible_mask(flats)
        mask_calls = len(calls)
        expected = np.array(
            [limited.is_feasible(limited.flat_to_config(int(f)))
             for f in flats]
        )
        np.testing.assert_array_equal(mask, expected)
        # The predicate only ran on rows the vectorized product
        # constraint accepted.
        assert mask_calls == int(
            limited.without_constraints()
            .with_constraints(workgroup_product_limit(("a", "c"), 6))
            .feasible_mask(flats)
            .sum()
        )

    def test_product_prefix_semantics_with_zero(self):
        # Scalar rejection happens on a running prefix: (a*b) may exceed
        # the limit even when a later zero pulls the product back under.
        from repro.searchspace.constraints import ProductLimitConstraint

        space = SearchSpace(
            [IntegerParameter("a", 0, 9), IntegerParameter("b", 0, 9)],
            [ProductLimitConstraint(parameter_names=("a", "b"), limit=8)],
        )
        flats = np.arange(space.size)
        expected = np.array(
            [space.is_feasible(space.flat_to_config(int(f))) for f in flats]
        )
        np.testing.assert_array_equal(space.feasible_mask(flats), expected)


class TestSampling:
    def test_sample_feasible_only(self):
        space = paper_search_space()
        rng = np.random.default_rng(0)
        for cfg in space.sample(rng, 100, feasible_only=True):
            assert space.is_feasible(cfg)

    def test_sample_unconstrained_hits_infeasible_eventually(self):
        space = paper_search_space()
        rng = np.random.default_rng(0)
        cfgs = space.sample(rng, 2000, feasible_only=False)
        assert any(not space.is_feasible(c) for c in cfgs)

    def test_sample_reproducible(self):
        space = paper_search_space()
        a = space.sample(np.random.default_rng(3), 10)
        b = space.sample(np.random.default_rng(3), 10)
        assert a == b

    def test_sample_flat_feasible(self):
        space = paper_search_space()
        rng = np.random.default_rng(1)
        flats = space.sample_flat(rng, 500, feasible_only=True)
        assert flats.shape == (500,)
        for f in flats[:50]:
            assert space.is_feasible(space.flat_to_config(int(f)))

    def test_unsatisfiable_constraint_raises(self, small_space):
        impossible = small_space.with_constraints(
            workgroup_product_limit(("a", "c"), 1)
        )
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            impossible.sample(rng, 1, feasible_only=True, max_rejections=50)


class TestEnumeration:
    def test_enumerate_matches_size(self, small_space):
        assert sum(1 for _ in small_space.enumerate()) == small_space.size

    def test_enumerate_feasible_subset(self, small_space):
        limited = small_space.with_constraints(
            workgroup_product_limit(("a", "c"), 6)
        )
        feasible = list(limited.enumerate_feasible())
        assert 0 < len(feasible) < limited.size
        assert all(limited.is_feasible(c) for c in feasible)
