"""``repro-store`` CLI: ls / stats / gc over a populated store."""

import json

import pytest

from repro.store import ResultStore, fingerprint_of
from repro.store.cli import main as store_main

from .test_store import make_identity, make_result


@pytest.fixture()
def populated(tmp_path):
    root = tmp_path / "store"
    store = ResultStore(root)
    identity = make_identity()
    fp = fingerprint_of(identity)
    store.put_result(fp, make_result(), identity)
    torn = make_identity(experiment=1)
    fp_torn = fingerprint_of(torn)
    store.put_result(fp_torn, make_result(experiment=1), torn)
    store.path_for(fp_torn).write_text("torn")
    return root, fp, fp_torn


class TestLs:
    def test_ls_columns(self, populated, capsys):
        root, fp, fp_torn = populated
        assert store_main(["ls", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert fp in out and fp_torn in out
        assert "random_search/add/titan_v/25/0" in out
        assert "corrupt" in out
        assert "2 entries" in out

    def test_ls_json(self, populated, capsys):
        root, fp, fp_torn = populated
        assert store_main(["ls", "--store", str(root), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_fp = {r["fingerprint"]: r for r in rows}
        assert by_fp[fp]["status"] == "ok"
        assert by_fp[fp]["cell"] == "random_search/add/titan_v/25/0"
        assert by_fp[fp_torn]["status"] == "corrupt"

    def test_ls_empty_store(self, tmp_path, capsys):
        assert store_main(["ls", "--store", str(tmp_path / "none")]) == 0
        assert "empty store" in capsys.readouterr().out


class TestStats:
    def test_stats_json(self, populated, capsys):
        root, _fp, _torn = populated
        assert store_main(["stats", "--store", str(root)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2
        assert stats["valid"] == 1
        assert stats["by_reason"]["corrupt"] == 1


class TestGc:
    def test_gc_dry_run_keeps_files(self, populated, capsys):
        root, _fp, fp_torn = populated
        assert store_main(["gc", "--store", str(root), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would evict 1 entries, kept 1" in out
        assert ResultStore(root).path_for(fp_torn).exists()

    def test_gc_deletes(self, populated, capsys):
        root, fp, fp_torn = populated
        assert store_main(["gc", "--store", str(root)]) == 0
        assert "evicted 1 entries, kept 1" in capsys.readouterr().out
        store = ResultStore(root)
        assert not store.path_for(fp_torn).exists()
        assert store.get_result(fp) is not None

    def test_ttl_flag_expires(self, populated, capsys):
        root, _fp, _torn = populated
        assert store_main(
            ["stats", "--store", str(root), "--ttl", "0"]
        ) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["valid"] == 0


class TestErrors:
    def test_no_store_dir_exits(self, monkeypatch):
        from repro.store import STORE_ENV

        monkeypatch.delenv(STORE_ENV, raising=False)
        with pytest.raises(SystemExit, match="no store directory"):
            store_main(["ls"])

    def test_env_var_is_default(self, populated, monkeypatch, capsys):
        from repro.store import STORE_ENV

        root, _fp, _torn = populated
        monkeypatch.setenv(STORE_ENV, str(root))
        assert store_main(["stats"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 2
