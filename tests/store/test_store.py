"""Content-addressed result store: keys, validation, races, gc.

The store's integrity contract is "rebuild, never crash": every broken,
torn, stale, or alien entry must read as a miss, and two writers racing
one fingerprint must converge on a whole entry.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.experiments.results import ExperimentResult
from repro.gpu.simulator import SIMULATOR_VERSION
from repro.obs import MetricsRegistry
from repro.store import (
    STORE_ENV,
    STORE_FORMAT_VERSION,
    ResultStore,
    canonical_json,
    cell_identity,
    default_store_dir,
    fingerprint_of,
)


def make_result(**overrides):
    fields = dict(
        algorithm="random_search",
        kernel="add",
        arch="titan_v",
        sample_size=25,
        experiment=0,
        final_runtime_ms=1.25,
        best_flat=7,
        observed_best_ms=1.5,
        samples_used=25,
        convergence=[2.0, 1.5],
        metrics={"evaluations_total": 25.0, "tuner_seconds_sum": 0.3},
    )
    fields.update(overrides)
    return ExperimentResult(**fields)


def make_identity(**overrides):
    kwargs = dict(
        algorithm="random_search",
        kernel="add",
        arch="titan_v",
        sample_size=25,
        experiment=0,
        root_seed=20220530,
        final_repeats=10,
    )
    kwargs.update(overrides)
    return cell_identity("aaaa1111bbbb2222cccc3333", **kwargs)


class TestKeys:
    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_fingerprint_deterministic_and_sensitive(self):
        base = make_identity()
        assert fingerprint_of(base) == fingerprint_of(make_identity())
        assert len(fingerprint_of(base)) == 24
        for change in (
            dict(algorithm="bo_gp"),
            dict(kernel="convolution"),
            dict(arch="a100"),
            dict(sample_size=50),
            dict(experiment=1),
            dict(root_seed=7),
            dict(final_repeats=3),
            dict(tuner_kwargs={"population": 8}),
            dict(dataset_rows=100),
        ):
            assert fingerprint_of(make_identity(**change)) != fingerprint_of(
                base
            ), change

    def test_landscape_fingerprint_feeds_identity(self):
        a = make_identity()
        b = cell_identity(
            "ffff0000ffff0000ffff0000",
            algorithm="random_search",
            kernel="add",
            arch="titan_v",
            sample_size=25,
            experiment=0,
            root_seed=20220530,
            final_repeats=10,
        )
        assert fingerprint_of(a) != fingerprint_of(b)

    def test_tuner_kwargs_order_is_canonical(self):
        a = make_identity(tuner_kwargs=(("a", 1), ("b", 2)))
        b = make_identity(tuner_kwargs=(("b", 2), ("a", 1)))
        assert fingerprint_of(a) == fingerprint_of(b)

    def test_simulator_version_is_in_identity(self):
        assert make_identity()["simulator_version"] == SIMULATOR_VERSION

    def test_default_store_dir_reads_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert default_store_dir() is None
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "store"))
        assert default_store_dir() == tmp_path / "store"


class TestRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        identity = make_identity()
        fp = fingerprint_of(identity)
        result = make_result()
        path = store.put_result(fp, result, identity)
        assert path.is_file()
        got = store.get_result(fp)
        assert got == result
        assert got.convergence == result.convergence

    def test_wall_clock_metrics_scrubbed(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        fp = fingerprint_of(make_identity())
        store.put_result(fp, make_result(), make_identity())
        got = store.get_result(fp)
        assert "tuner_seconds_sum" not in got.metrics
        assert got.metrics["evaluations_total"] == 25.0

    def test_absent_is_miss(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path / "store", metrics=registry)
        assert store.get_result("0" * 24) is None
        flat = registry.flat_counters()
        assert flat["result_store_misses_total"] == 1
        assert "result_store_invalid_total" not in flat

    def test_hit_and_write_counted(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path / "store", metrics=registry)
        fp = fingerprint_of(make_identity())
        store.put_result(fp, make_result(), make_identity())
        assert store.get_result(fp) is not None
        flat = registry.flat_counters()
        assert flat["result_store_writes_total"] == 1
        assert flat["result_store_hits_total"] == 1


class TestInvalidation:
    def _stored(self, tmp_path, **store_kwargs):
        store = ResultStore(tmp_path / "store", **store_kwargs)
        identity = make_identity()
        fp = fingerprint_of(identity)
        store.put_result(fp, make_result(), identity)
        return store, fp

    def test_torn_entry_is_miss_not_crash(self, tmp_path):
        store, fp = self._stored(tmp_path)
        path = store.path_for(fp)
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])  # torn mid-write
        assert store.get_result(fp) is None

    def test_garbage_entry_is_miss(self, tmp_path):
        store, fp = self._stored(tmp_path)
        store.path_for(fp).write_text("\x00not json\x00")
        assert store.get_result(fp) is None

    def test_simulator_version_bump_invalidates(self, tmp_path):
        store, fp = self._stored(tmp_path)
        path = store.path_for(fp)
        doc = json.loads(path.read_text())
        doc["simulator_version"] = SIMULATOR_VERSION + 1
        path.write_text(json.dumps(doc))
        assert store.get_result(fp) is None

    def test_format_version_bump_invalidates(self, tmp_path):
        store, fp = self._stored(tmp_path)
        path = store.path_for(fp)
        doc = json.loads(path.read_text())
        doc["format_version"] = STORE_FORMAT_VERSION + 1
        path.write_text(json.dumps(doc))
        assert store.get_result(fp) is None

    def test_fingerprint_mismatch_refused(self, tmp_path):
        store, fp = self._stored(tmp_path)
        other = "f" * 24
        target = store.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(store.path_for(fp).read_text())
        assert store.get_result(other) is None

    def test_alien_result_schema_refused(self, tmp_path):
        store, fp = self._stored(tmp_path)
        path = store.path_for(fp)
        doc = json.loads(path.read_text())
        doc["result"] = {"not_a_field": 1}
        path.write_text(json.dumps(doc))
        assert store.get_result(fp) is None

    def test_ttl_expiry(self, tmp_path):
        now = [1000.0]
        store = ResultStore(
            tmp_path / "store", ttl=60.0, clock=lambda: now[0]
        )
        identity = make_identity()
        fp = fingerprint_of(identity)
        store.put_result(fp, make_result(), identity)
        assert store.get_result(fp) is not None
        now[0] += 61.0
        assert store.get_result(fp) is None

    def test_gc_reclaims_refused_entries(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path / "store", metrics=registry)
        keep = make_identity()
        store.put_result(fingerprint_of(keep), make_result(), keep)
        drop = make_identity(experiment=1)
        fp_drop = fingerprint_of(drop)
        store.put_result(fp_drop, make_result(experiment=1), drop)
        store.path_for(fp_drop).write_text("torn")

        dry = store.gc(dry_run=True)
        assert dry["kept"] == 1 and len(dry["evicted"]) == 1
        assert store.path_for(fp_drop).exists()

        report = store.gc()
        assert report["kept"] == 1
        assert report["evicted"][0]["reason"] == "corrupt"
        assert not store.path_for(fp_drop).exists()
        assert registry.flat_counters()[
            "result_store_evictions_total"
        ] == 1

    def test_stats_counts_by_reason(self, tmp_path):
        store, fp = self._stored(tmp_path)
        bad = make_identity(experiment=2)
        fp_bad = fingerprint_of(bad)
        store.put_result(fp_bad, make_result(experiment=2), bad)
        store.path_for(fp_bad).write_text("{")
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["valid"] == 1
        assert stats["by_reason"] == {"ok": 1, "corrupt": 1}
        assert stats["total_bytes"] > 0


def _race_writer(root, barrier_dir, index):
    """One racing process: write the same fingerprint as everyone else."""
    store = ResultStore(root)
    identity = make_identity()
    fp = fingerprint_of(identity)
    # Crude start-line: spin until every sibling has registered.
    flag = os.path.join(barrier_dir, f"ready-{index}")
    with open(flag, "w") as fh:
        fh.write("x")
    while len(os.listdir(barrier_dir)) < 4:
        time.sleep(0.001)
    for _ in range(20):
        store.put_result(fp, make_result(), identity)
    return fp


class TestConcurrency:
    def test_two_processes_racing_same_key_converge(self, tmp_path):
        root = tmp_path / "store"
        barrier = tmp_path / "barrier"
        barrier.mkdir()
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(
                target=_race_writer, args=(str(root), str(barrier), i)
            )
            for i in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        store = ResultStore(root)
        identity = make_identity()
        fp = fingerprint_of(identity)
        got = store.get_result(fp)
        assert got == make_result()
        # Exactly one whole entry on disk — no temp-file debris.
        entries = [p for p, _d, r in store.entries()]
        reasons = {r for _p, _d, r in store.entries()}
        assert len(entries) == 1
        assert reasons == {"ok"}
