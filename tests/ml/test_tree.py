"""Unit and property tests for the CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeRegressor


def step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, (n, 2))
    y = np.where(X[:, 0] > 5.0, 10.0, -10.0)
    return X, y


class TestFitValidation:
    def test_rejects_1d_X(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.arange(5.0), np.arange(5.0))

    def test_rejects_mismatched_y(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((5, 2)), np.ones(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.empty((0, 2)), np.empty(0))

    def test_rejects_nonfinite_targets(self):
        X = np.ones((3, 2))
        with pytest.raises(ValueError, match="non-finite"):
            DecisionTreeRegressor().fit(X, np.array([1.0, np.inf, 2.0]))

    def test_rejects_bad_hyperparams(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((2, 2)))

    def test_predict_wrong_width(self):
        t = DecisionTreeRegressor().fit(*step_data())
        with pytest.raises(ValueError):
            t.predict(np.ones((2, 3)))


class TestLearning:
    def test_recovers_step_function(self):
        X, y = step_data()
        t = DecisionTreeRegressor().fit(X, y)
        Xt = np.array([[2.0, 5.0], [8.0, 5.0]])
        np.testing.assert_allclose(t.predict(Xt), [-10.0, 10.0])

    def test_split_at_true_boundary(self):
        X, y = step_data()
        t = DecisionTreeRegressor(max_depth=1).fit(X, y)
        root = t._nodes[0]
        assert root.feature == 0
        assert 4.0 < root.threshold < 6.0

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).uniform(0, 1, (50, 3))
        t = DecisionTreeRegressor().fit(X, np.full(50, 7.0))
        assert t.node_count == 1
        np.testing.assert_allclose(t.predict(X[:5]), 7.0)

    def test_max_depth_respected(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (300, 4))
        y = rng.standard_normal(300)
        t = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert t.depth <= 3

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, (300, 4))
        y = rng.standard_normal(300)
        t = DecisionTreeRegressor(min_samples_leaf=25).fit(X, y)
        leaf_sizes = [
            n.n_samples for n in t._nodes if n.feature == -1
        ]
        assert min(leaf_sizes) >= 25

    def test_unbounded_tree_interpolates_unique_points(self):
        rng = np.random.default_rng(1)
        X = rng.permutation(100).reshape(-1, 1).astype(float)
        y = rng.standard_normal(100)
        t = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(t.predict(X), y)

    def test_integer_features_exact_thresholds(self):
        """Thresholds fall between consecutive integers."""
        X = np.array([[1.0], [2.0], [3.0], [4.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        t = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert t._nodes[0].threshold == pytest.approx(2.5)

    def test_duplicate_feature_values_handled(self):
        X = np.array([[1.0], [1.0], [2.0], [2.0]])
        y = np.array([1.0, 3.0, 10.0, 12.0])
        t = DecisionTreeRegressor(max_depth=1).fit(X, y)
        np.testing.assert_allclose(
            t.predict(np.array([[1.0], [2.0]])), [2.0, 11.0]
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_predictions_within_target_range(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.uniform(-1, 1, (60, 3))
        y = rng.uniform(-5, 5, 60)
        t = DecisionTreeRegressor(max_depth=4).fit(X, y)
        preds = t.predict(rng.uniform(-1, 1, (40, 3)))
        assert preds.min() >= y.min() - 1e-9
        assert preds.max() <= y.max() + 1e-9

    def test_feature_subsetting_reproducible(self):
        X, y = step_data(100)
        t1 = DecisionTreeRegressor(
            max_features=1, rng=np.random.default_rng(3)
        ).fit(X, y)
        t2 = DecisionTreeRegressor(
            max_features=1, rng=np.random.default_rng(3)
        ).fit(X, y)
        np.testing.assert_array_equal(t1.predict(X), t2.predict(X))
