"""Unit tests for the random forest regressor."""

import numpy as np
import pytest

from repro.ml import RandomForestRegressor


def smooth_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, (n, 3))
    y = np.sin(2 * X[:, 0]) + 0.5 * X[:, 1] ** 2
    return X, y + 0.05 * rng.standard_normal(n)


class TestValidation:
    def test_rejects_zero_estimators(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((2, 2)))

    def test_rejects_1d_X(self):
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.arange(5.0), np.arange(5.0))

    def test_oob_requires_bootstrap(self):
        X, y = smooth_data(50)
        f = RandomForestRegressor(
            n_estimators=3, bootstrap=False, rng=np.random.default_rng(0)
        ).fit(X, y)
        with pytest.raises(ValueError):
            f.oob_score()


class TestLearning:
    def test_generalizes_smooth_function(self):
        X, y = smooth_data()
        f = RandomForestRegressor(
            n_estimators=40, rng=np.random.default_rng(0)
        ).fit(X, y)
        rng = np.random.default_rng(9)
        Xt = rng.uniform(-2, 2, (400, 3))
        yt = np.sin(2 * Xt[:, 0]) + 0.5 * Xt[:, 1] ** 2
        r2 = 1 - ((f.predict(Xt) - yt) ** 2).mean() / yt.var()
        assert r2 > 0.8

    def test_prediction_is_tree_average(self):
        X, y = smooth_data(100)
        f = RandomForestRegressor(
            n_estimators=7, rng=np.random.default_rng(0)
        ).fit(X, y)
        manual = np.mean([t.predict(X[:10]) for t in f.trees], axis=0)
        np.testing.assert_allclose(f.predict(X[:10]), manual)

    def test_reproducible_with_seed(self):
        X, y = smooth_data(100)
        a = RandomForestRegressor(
            n_estimators=5, rng=np.random.default_rng(1)
        ).fit(X, y).predict(X[:20])
        b = RandomForestRegressor(
            n_estimators=5, rng=np.random.default_rng(1)
        ).fit(X, y).predict(X[:20])
        np.testing.assert_array_equal(a, b)

    def test_predict_std_positive_on_noisy_data(self):
        X, y = smooth_data(150)
        f = RandomForestRegressor(
            n_estimators=10, rng=np.random.default_rng(0)
        ).fit(X, y)
        stds = f.predict_std(X[:30])
        assert stds.shape == (30,)
        assert stds.mean() > 0

    def test_oob_score_reasonable(self):
        X, y = smooth_data(400)
        f = RandomForestRegressor(
            n_estimators=30, rng=np.random.default_rng(0)
        ).fit(X, y)
        assert 0.5 < f.oob_score() <= 1.0

    def test_bagging_differs_across_trees(self):
        X, y = smooth_data(150)
        f = RandomForestRegressor(
            n_estimators=5, rng=np.random.default_rng(0)
        ).fit(X, y)
        preds = np.stack([t.predict(X[:50]) for t in f.trees])
        assert preds.std(axis=0).max() > 0
