"""Unit tests for the Gaussian-process regressor."""

import numpy as np
import pytest

from repro.ml import RBF, GaussianProcessRegressor, Matern52


def make_1d(n=40, seed=0, noise=0.01):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-3, 3, (n, 1))
    y = np.sin(X[:, 0]) + noise * rng.standard_normal(n)
    return X, y


class TestKernels:
    def test_correlation_at_zero_distance(self):
        z = np.zeros((1, 1))
        assert RBF.correlation(z)[0, 0] == pytest.approx(1.0)
        assert Matern52.correlation(z)[0, 0] == pytest.approx(1.0)

    def test_correlation_decays(self):
        d = np.array([[0.0, 1.0, 4.0, 16.0]])
        for k in (RBF, Matern52):
            vals = k.correlation(d)[0]
            assert np.all(np.diff(vals) < 0)
            assert vals[-1] < 0.1


class TestValidation:
    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(kernel="ou")

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(np.ones((1, 1)), np.ones(1))

    def test_rejects_nonfinite(self):
        X = np.ones((3, 1))
        with pytest.raises(ValueError):
            GaussianProcessRegressor().fit(X, np.array([1.0, np.nan, 2.0]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.ones((2, 1)))

    def test_predict_wrong_width(self):
        X, y = make_1d()
        gp = GaussianProcessRegressor(rng=np.random.default_rng(0)).fit(X, y)
        with pytest.raises(ValueError):
            gp.predict(np.ones((2, 3)))


class TestPosterior:
    def test_interpolates_clean_data(self):
        X, y = make_1d(noise=0.0)
        gp = GaussianProcessRegressor(rng=np.random.default_rng(0)).fit(X, y)
        pred = gp.predict(X)
        assert np.max(np.abs(pred - y)) < 0.05

    def test_generalizes_sine(self):
        X, y = make_1d(n=60)
        gp = GaussianProcessRegressor(rng=np.random.default_rng(0)).fit(X, y)
        Xt = np.linspace(-2.5, 2.5, 50).reshape(-1, 1)
        pred = gp.predict(Xt)
        np.testing.assert_allclose(pred, np.sin(Xt[:, 0]), atol=0.25)

    def test_uncertainty_grows_away_from_data(self):
        X = np.array([[0.0], [0.5], [1.0]])
        y = np.array([0.0, 0.4, 0.9])
        gp = GaussianProcessRegressor(rng=np.random.default_rng(0)).fit(X, y)
        _, near = gp.predict(np.array([[0.5]]), return_std=True)
        _, far = gp.predict(np.array([[10.0]]), return_std=True)
        assert far[0] > 3 * near[0]

    def test_std_non_negative(self):
        X, y = make_1d()
        gp = GaussianProcessRegressor(rng=np.random.default_rng(0)).fit(X, y)
        _, std = gp.predict(np.linspace(-5, 5, 30).reshape(-1, 1),
                            return_std=True)
        assert np.all(std >= 0)

    def test_noise_estimate_reflects_data(self):
        X_clean, y_clean = make_1d(n=60, noise=0.0)
        X_noisy, y_noisy = make_1d(n=60, noise=0.4)
        gp_c = GaussianProcessRegressor(rng=np.random.default_rng(0)).fit(
            X_clean, y_clean
        )
        gp_n = GaussianProcessRegressor(rng=np.random.default_rng(0)).fit(
            X_noisy, y_noisy
        )
        assert (
            gp_n.hyperparameters["noise_variance"]
            > gp_c.hyperparameters["noise_variance"]
        )

    def test_warm_refit_without_optimization(self):
        X, y = make_1d(n=30)
        gp = GaussianProcessRegressor(rng=np.random.default_rng(0)).fit(X, y)
        theta_before = gp.hyperparameters
        X2, y2 = make_1d(n=40, seed=1)
        gp.fit(X2, y2, optimize=False)
        theta_after = gp.hyperparameters
        np.testing.assert_allclose(
            theta_before["lengthscales"], theta_after["lengthscales"]
        )
        # But the posterior reflects the new data.
        pred = gp.predict(X2)
        assert np.corrcoef(pred, y2)[0, 1] > 0.9

    def test_log_marginal_likelihood_finite(self):
        X, y = make_1d()
        gp = GaussianProcessRegressor(rng=np.random.default_rng(0)).fit(X, y)
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_ard_lengthscales_detect_irrelevant_dimension(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-2, 2, (80, 2))
        y = np.sin(2 * X[:, 0])  # dim 1 is irrelevant
        gp = GaussianProcessRegressor(rng=rng).fit(X, y)
        ls = gp.hyperparameters["lengthscales"]
        assert ls[1] > ls[0]
