"""Unit tests for feature/target transforms."""

import numpy as np
import pytest

from repro.ml import (
    StandardScaler,
    log_runtime,
    penalize_failures,
    unlog_runtime,
)


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, (200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-12)

    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 2, (50, 3))
        sc = StandardScaler().fit(X)
        np.testing.assert_allclose(
            sc.inverse_transform(sc.transform(X)), X, atol=1e-12
        )

    def test_degenerate_column_protected(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            StandardScaler().inverse_transform(np.ones((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.arange(5.0))


class TestPenalizeFailures:
    def test_no_failures_passthrough(self):
        r = np.array([1.0, 2.0, 3.0])
        out = penalize_failures(r)
        np.testing.assert_array_equal(out, r)
        assert out is not r  # copy, not alias

    def test_failures_replaced_with_scaled_worst(self):
        r = np.array([1.0, 5.0, np.inf])
        out = penalize_failures(r, penalty_factor=10.0)
        np.testing.assert_array_equal(out, [1.0, 5.0, 50.0])

    def test_all_failures_fixed_penalty(self):
        out = penalize_failures(np.array([np.inf, np.inf]))
        assert np.all(out == 1e6)

    def test_penalty_dominates_valid_values(self):
        r = np.array([0.5, np.inf, 2.0])
        out = penalize_failures(r)
        assert out[1] > out.max(initial=0) / 2
        assert out[1] > 2.0


class TestLogTransforms:
    def test_roundtrip(self):
        r = np.array([0.5, 1.0, 100.0])
        np.testing.assert_allclose(unlog_runtime(log_runtime(r)), r)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            log_runtime(np.array([1.0, np.inf]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_runtime(np.array([0.0, 1.0]))
