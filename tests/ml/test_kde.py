"""Unit tests for the adaptive Parzen estimator (TPE substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import AdaptiveParzenEstimator1D


class TestValidation:
    def test_invalid_range(self):
        with pytest.raises(ValueError):
            AdaptiveParzenEstimator1D(5, 4)

    def test_invalid_prior_weight(self):
        with pytest.raises(ValueError):
            AdaptiveParzenEstimator1D(0, 4, prior_weight=0.0)

    def test_observations_outside_range(self):
        est = AdaptiveParzenEstimator1D(1, 8)
        with pytest.raises(ValueError):
            est.fit(np.array([0]))

    def test_unfitted_raises(self):
        est = AdaptiveParzenEstimator1D(1, 8)
        with pytest.raises(RuntimeError):
            est.prob(np.array([1]))
        with pytest.raises(RuntimeError):
            est.sample(np.random.default_rng(0), 1)


class TestDensity:
    def test_probabilities_sum_to_one(self):
        est = AdaptiveParzenEstimator1D(1, 16).fit(np.array([3, 3, 4, 12]))
        p = est.prob(np.arange(1, 17))
        assert p.sum() == pytest.approx(1.0, abs=1e-9)

    def test_empty_fit_is_prior_only(self):
        est = AdaptiveParzenEstimator1D(1, 16).fit(np.array([]))
        p = est.prob(np.arange(1, 17))
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
        # Wide prior: roughly flat, peaked mildly at the center.
        assert p.max() / p.min() < 4.0

    def test_mass_concentrates_on_observations(self):
        est = AdaptiveParzenEstimator1D(1, 16).fit(
            np.array([4, 4, 4, 4, 5, 4])
        )
        p = est.prob(np.arange(1, 17))
        assert np.argmax(p) + 1 in (4, 5)
        assert p[3] > 5 * p[12]

    def test_outside_range_zero(self):
        est = AdaptiveParzenEstimator1D(1, 8).fit(np.array([4]))
        p = est.prob(np.array([0, 9, 100]))
        np.testing.assert_array_equal(p, 0.0)

    def test_log_prob_matches_prob(self):
        est = AdaptiveParzenEstimator1D(1, 8).fit(np.array([2, 6]))
        v = np.arange(1, 9)
        np.testing.assert_allclose(est.log_prob(v), np.log(est.prob(v)))

    def test_adaptive_bandwidth_wider_when_isolated(self):
        """A lone observation far from others gets a wider bandwidth than
        clustered observations (Bergstra's adaptive rule)."""
        est = AdaptiveParzenEstimator1D(1, 100).fit(
            np.array([10, 11, 12, 90])
        )
        by_mu = dict(zip(est._mus[1:], est._sigmas[1:]))  # skip prior
        assert by_mu[90.0] > by_mu[11.0]

    def test_min_bandwidth_shrinks_with_more_observations(self):
        """HyperOpt clips bandwidths to prior/(1+n): more data allows
        sharper densities."""
        few = AdaptiveParzenEstimator1D(1, 100).fit(np.full(3, 50))
        many = AdaptiveParzenEstimator1D(1, 100).fit(np.full(60, 50))
        p_few = few.prob(np.array([50]))[0]
        p_many = many.prob(np.array([50]))[0]
        assert p_many > 2 * p_few

    @given(
        st.lists(st.integers(1, 16), min_size=0, max_size=30),
    )
    @settings(max_examples=40)
    def test_normalization_property(self, obs):
        est = AdaptiveParzenEstimator1D(1, 16).fit(np.array(obs))
        p = est.prob(np.arange(1, 17))
        assert p.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(p >= 0)


class TestSampling:
    def test_samples_within_range(self):
        est = AdaptiveParzenEstimator1D(1, 16).fit(np.array([4, 8]))
        s = est.sample(np.random.default_rng(0), 500)
        assert s.min() >= 1 and s.max() <= 16

    def test_samples_follow_density(self):
        est = AdaptiveParzenEstimator1D(1, 16).fit(np.array([4] * 20))
        s = est.sample(np.random.default_rng(0), 2000)
        # Most mass near 4.
        assert np.median(s) in (3, 4, 5)

    def test_sample_count_validation(self):
        est = AdaptiveParzenEstimator1D(1, 16).fit(np.array([4]))
        with pytest.raises(ValueError):
            est.sample(np.random.default_rng(0), 0)

    def test_reproducible(self):
        est = AdaptiveParzenEstimator1D(1, 16).fit(np.array([4, 9]))
        a = est.sample(np.random.default_rng(5), 50)
        b = est.sample(np.random.default_rng(5), 50)
        np.testing.assert_array_equal(a, b)
